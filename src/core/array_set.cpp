#include "core/array_set.h"

namespace sky::core {

Result<ArraySet::Config> ArraySet::Config::from_config(
    const sky::Config& file, const db::Schema& schema) {
  Config config;
  config.default_rows = file.get_int("array_set", "default_rows", 1000);
  if (config.default_rows <= 0) {
    return Status(ErrorCode::kInvalidArgument,
                  "array_set.default_rows must be positive");
  }
  if (file.has("array_set", "memory_high_water_bytes")) {
    config.memory_high_water_bytes =
        file.get_int("array_set", "memory_high_water_bytes", 0);
    if (*config.memory_high_water_bytes <= 0) {
      return Status(ErrorCode::kInvalidArgument,
                    "array_set.memory_high_water_bytes must be positive");
    }
  }
  for (const std::string& key : file.keys("array_set")) {
    if (key == "default_rows" || key == "memory_high_water_bytes") continue;
    if (!schema.has_table(key)) {
      return Status(ErrorCode::kInvalidArgument,
                    "array_set config references unknown table: " + key);
    }
    const int64_t rows = file.get_int("array_set", key, 0);
    if (rows <= 0) {
      return Status(ErrorCode::kInvalidArgument,
                    "array_set." + key + " must be positive");
    }
    config.per_table_rows[key] = rows;
  }
  return config;
}

ArraySet::ArraySet(const db::Schema& schema, Config config)
    : high_water_bytes_(config.memory_high_water_bytes) {
  const auto table_count = static_cast<size_t>(schema.table_count());
  arrays_.resize(table_count);
  batches_.resize(table_count);
  table_defs_.reserve(table_count);
  for (uint32_t id = 0; id < static_cast<uint32_t>(table_count); ++id) {
    table_defs_.push_back(&schema.table(id));
  }
  capacities_.resize(table_count, config.default_rows);
  for (const auto& [table_name, rows] : config.per_table_rows) {
    const auto table_id = schema.table_id(table_name);
    if (table_id.is_ok()) capacities_[*table_id] = rows;
  }
}

bool ArraySet::append(uint32_t table_id, db::Row row) {
  auto& array = arrays_[table_id];
  if (!array.has_value()) {
    // First row for this table in the current cycle: create its array.
    array.emplace();
    array->reserve(static_cast<size_t>(capacities_[table_id]));
  }
  footprint_bytes_ += static_cast<int64_t>(db::row_memory_bytes(row));
  array->push_back(std::move(row));
  ++buffered_rows_;
  if (static_cast<int64_t>(array->size()) >= capacities_[table_id]) {
    flush_needed_ = true;
  }
  if (high_water_bytes_.has_value() &&
      footprint_bytes_ >= *high_water_bytes_) {
    flush_needed_ = true;
  }
  return flush_needed_;
}

bool ArraySet::append_batch(uint32_t table_id, const db::ColumnBatch& batch) {
  if (batch.empty()) return flush_needed_;
  auto& buffer = batches_[table_id];
  if (!buffer.has_value()) {
    // First rows for this table in the current cycle: create its buffer.
    buffer.emplace(*table_defs_[table_id]);
    buffer->reserve(static_cast<size_t>(capacities_[table_id]));
  }
  // Footprint counts written bytes, not reserved capacity: the paging model
  // (client memory high-water) only cares about pages actually touched, and
  // the arena layout has no per-row allocation overhead to account for.
  const int64_t before = static_cast<int64_t>(buffer->data_bytes());
  buffer->append_from(batch);
  footprint_bytes_ += static_cast<int64_t>(buffer->data_bytes()) - before;
  buffered_rows_ += static_cast<int64_t>(batch.size());
  if (static_cast<int64_t>(buffer->size()) >= capacities_[table_id]) {
    flush_needed_ = true;
  }
  if (high_water_bytes_.has_value() &&
      footprint_bytes_ >= *high_water_bytes_) {
    flush_needed_ = true;
  }
  return flush_needed_;
}

void ArraySet::clear() {
  for (auto& array : arrays_) array.reset();  // release, don't just empty
  for (auto& batch : batches_) batch.reset();
  buffered_rows_ = 0;
  footprint_bytes_ = 0;
  flush_needed_ = false;
}

void ArraySet::clear_keep_buffers() {
  for (auto& array : arrays_) array.reset();
  for (auto& batch : batches_) {
    if (batch.has_value()) batch->clear();  // keep layout and capacity
  }
  buffered_rows_ = 0;
  footprint_bytes_ = 0;
  flush_needed_ = false;
}

int ArraySet::active_arrays() const {
  int count = 0;
  for (const auto& array : arrays_) {
    if (array.has_value()) ++count;
  }
  // A cycle buffers rows OR columns per table, never both, so the sum stays
  // one-per-table-touched either way. Column buffers retained empty across
  // cycles (clear_keep_buffers) are not active until rows land in them.
  for (const auto& batch : batches_) {
    if (batch.has_value() && !batch->empty()) ++count;
  }
  return count;
}

}  // namespace sky::core
