// CommitPolicy: one struct for every commit decision in the load path.
//
// The paper's section 4.5.2 lever ("reduce frequency of transaction
// commits") used to be spread over three divergent knob sets —
// TuningProfile::commit_every_cycles/commit_every_rows,
// BulkLoaderOptions::commit_every_cycles/commit_every_batches, and
// NonBulkLoaderOptions::commit_every_rows. They are now all views of this
// one policy: the client-side cadence (how often a loader issues COMMIT)
// plus the server-side durability shape (how the engine coalesces the
// resulting commit flushes, and whether acks wait for the covering device
// write).
#pragma once

#include <string>

#include "common/units.h"
#include "storage/wal.h"

namespace sky::core {

struct CommitPolicy {
  // ---- client-side cadence: when a loader commits (0 = end of file) ----
  // Bulk: commit every N bulk-loading (flush) cycles.
  int64_t every_cycles = 0;
  // Bulk: commit every N database calls (1 = JDBC-style autocommit after
  // every batch — the untuned baseline section 4.5.2 targets). Combines
  // with every_cycles.
  int64_t every_batches = 0;
  // Non-bulk: commit every N loaded rows.
  int64_t every_rows = 0;

  // ---- server-side durability: how those commits hit the log device ----
  // Commit-coalescing window a flush leader holds open (0 = flush
  // immediately); groups close early at max_group_commits commits. Threaded
  // into EngineOptions (real threads) and ServerConfig (simulation).
  Nanos commit_window = 0;
  int64_t max_group_commits = 8;
  // kStrict acks after the covering flush; kRelaxed acks at append and
  // leaves durability to sync_wal() checkpoints (watermark-honest).
  storage::DurabilityMode durability = storage::DurabilityMode::kStrict;

  // Any client-side cadence configured (vs. commit-at-end-of-file only)?
  bool frequent_commits() const {
    return every_cycles > 0 || every_batches > 0 || every_rows > 0;
  }

  // e.g. "infrequent", "frequent", "frequent, window=2ms x8, relaxed".
  std::string describe() const;
};

}  // namespace sky::core
