// Load reports: what happened while loading a file / a night.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace sky::core {

// One skipped row (client parse error or server constraint violation).
struct LoadError {
  enum class Stage { kParse, kServer };
  Stage stage;
  std::string table;        // empty for unparseable lines
  int64_t line_number = 0;  // 1-based line in the source file, if known
  std::string detail;       // row rendering or raw line prefix
  Status status;
};

struct FileLoadReport {
  std::string file_name;
  int64_t bytes = 0;
  int64_t lines_read = 0;
  int64_t rows_parsed = 0;
  int64_t parse_errors = 0;
  int64_t rows_loaded = 0;
  int64_t rows_skipped_server = 0;  // constraint violations skipped
  std::map<std::string, int64_t> loaded_per_table;
  int64_t db_calls = 0;
  int64_t flush_cycles = 0;
  int64_t commits = 0;
  Nanos elapsed = 0;
  // Detailed error records (capped; counters above are complete).
  std::vector<LoadError> errors;

  int64_t total_skipped() const { return parse_errors + rows_skipped_server; }
  void merge_counts(const FileLoadReport& other);
  std::string summary() const;
};

struct ParallelLoadReport {
  std::vector<FileLoadReport> files;
  int workers = 0;
  Nanos makespan = 0;
  int64_t total_bytes = 0;
  int64_t total_rows_loaded = 0;
  std::vector<Nanos> worker_busy;   // per worker
  // Per worker: time spent blocked on engine latches (real-thread runs; from
  // OpCosts::lock_wait_ns) or on modeled lock resources (simulation runs).
  std::vector<Nanos> worker_lock_wait;
  std::vector<int> files_per_worker;
  int files_skipped = 0;  // already-loaded files skipped (idempotent rerun)
  // Group-commit totals across workers: log-device flushes led, commits
  // that rode another worker's flush, and commit-coalescing window wait
  // paid by leaders. flushes/(flushes+piggybacks) is the flushes-per-commit
  // ratio the commit-window bench sweeps.
  int64_t commit_flushes = 0;
  int64_t commit_piggybacks = 0;
  Nanos commit_leader_wait = 0;
  // Admission-gate totals across workers (SessionStats field names; filled
  // identically by real and simulation runs): instance-wide transaction-slot
  // waits, per-table ITL waits, and injected long-stall time.
  Nanos txn_slot_wait = 0;
  Nanos itl_wait = 0;
  Nanos stall_time = 0;
  // Query-lane admission wait summed across workers that also served
  // queries (db/query_scheduler.h lanes; zero for load-only runs).
  Nanos query_lane_wait = 0;
  // Spatial-operator totals across workers that ran cone searches or
  // cross-matches alongside the load (db/spatial.h; zero for load-only
  // runs): rows pulled through zone/cone windows, pairs reaching the exact
  // angular-distance test, and pairs matched.
  int64_t zone_scan_rows = 0;
  int64_t xmatch_candidates = 0;
  int64_t xmatch_pairs = 0;
  // Client-side parser totals across workers (summed from each loader's
  // ParserStats): data lines parsed, rows that converted cleanly,
  // structural parse errors, and computed object htmids. These cross-check
  // the per-file parse_errors counters and the htmid index row count.
  int64_t parser_lines = 0;
  int64_t parser_data_rows = 0;
  int64_t parser_errors = 0;
  int64_t htmids_computed = 0;
  // Multi-engine scale-out telemetry (db::ShardedRepository): committed
  // rows per shard and the skew ratio max/mean (1.0 = perfectly balanced).
  // Empty / 0.0 for single-engine runs; filled by
  // ShardedRepository::fill_shard_telemetry after a sharded load.
  std::vector<int64_t> shard_rows;
  double shard_skew = 0.0;
  // Adaptive-control telemetry (core/controller.h; zero/empty when the run
  // had no controller): feedback ticks taken, policy patches applied, and
  // the rendered tail of the ControlTrace decision ring.
  uint64_t control_ticks = 0;
  uint64_t control_patches = 0;
  std::vector<std::string> control_decisions;

  double throughput_mb_per_s() const {
    if (makespan <= 0) return 0.0;
    return (static_cast<double>(total_bytes) / 1e6) / to_seconds(makespan);
  }
  std::string summary() const;
};

// Render a night's results as a Markdown report: totals, per-table rows,
// per-worker balance, and the first error details.
std::string render_markdown_report(const ParallelLoadReport& report,
                                   size_t max_errors = 10);

}  // namespace sky::core
