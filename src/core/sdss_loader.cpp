#include "core/sdss_loader.h"

#include <vector>

#include "catalog/parser.h"
#include "common/csv.h"
#include "common/strings.h"
#include "db/engine.h"

namespace sky::core {

SdssStyleLoader::SdssStyleLoader(client::Session& session,
                                 const db::Schema& schema,
                                 SdssLoaderOptions options)
    : session_(session), schema_(schema), options_(options) {}

SdssStyleLoader::~SdssStyleLoader() = default;

Result<FileLoadReport> SdssStyleLoader::load_text(std::string_view file_name,
                                                  std::string_view text) {
  FileLoadReport report;
  report.file_name = std::string(file_name);
  report.bytes = static_cast<int64_t>(text.size());
  const Nanos start = session_.now();
  catalog::CatalogParser parser(schema_);

  // ---- Phase 1: convert to per-table CSV files ------------------------
  Nanos phase_start = session_.now();
  const auto table_count = static_cast<size_t>(schema_.table_count());
  std::vector<std::vector<std::string>> csv_lines(table_count);
  for (std::string_view line : split_view(text, '\n')) {
    ++report.lines_read;
    if (!catalog::CatalogParser::is_data_line(line)) continue;
    session_.client_compute(options_.client_parse_cost_per_row +
                            options_.csv_convert_cost_per_row);
    auto parsed = parser.parse_line(line);
    if (!parsed.is_ok()) {
      ++report.parse_errors;
      if (report.errors.size() < options_.max_error_details) {
        report.errors.push_back(LoadError{LoadError::Stage::kParse, "",
                                          report.lines_read,
                                          std::string(line.substr(0, 80)),
                                          parsed.status()});
      }
      continue;
    }
    ++report.rows_parsed;
    std::vector<std::string> fields;
    fields.reserve(parsed->row.size());
    for (const db::Value& value : parsed->row) {
      fields.push_back(value.is_null() ? "" : value.to_display());
    }
    csv_lines[parsed->table_id].push_back(csv_encode_row(fields));
  }
  phases_.convert += session_.now() - phase_start;

  // ---- Phase 2: bulk load CSVs into the task database, parent-first ---
  phase_start = session_.now();
  db::EngineOptions task_options;
  task_options.cache_pages = 2048;
  db::Engine task_engine(schema_, task_options);
  const uint64_t task_txn = task_engine.begin_transaction();
  // Seed the task database with the reference tables so nightly rows'
  // foreign keys resolve during validation. Seed rows are not re-published;
  // they already exist at the destination.
  if (!options_.reference_seed_text.empty()) {
    catalog::CatalogParser seed_parser(schema_);
    for (std::string_view line :
         split_view(options_.reference_seed_text, '\n')) {
      if (!catalog::CatalogParser::is_data_line(line)) continue;
      auto parsed = seed_parser.parse_line(line);
      if (!parsed.is_ok()) continue;
      db::OpCosts scratch;
      const Status seed_status = task_engine.insert_row(
          task_txn, parsed->table_id, parsed->row, scratch);
      (void)seed_status;  // duplicates in the seed are harmless
    }
  }
  std::vector<std::vector<db::Row>> task_rows(table_count);
  for (const uint32_t table_id : schema_.topological_order()) {
    const db::TableDef& def = schema_.table(table_id);
    for (const std::string& csv_line : csv_lines[table_id]) {
      session_.client_compute(options_.task_load_cost_per_row);
      const auto fields = csv_decode_row(csv_line);
      if (!fields.is_ok() || fields->size() != def.columns.size()) {
        ++report.rows_skipped_server;
        continue;
      }
      db::Row row;
      row.reserve(def.columns.size());
      bool decoded = true;
      for (size_t c = 0; c < def.columns.size(); ++c) {
        const auto value =
            db::Value::parse_as(def.columns[c].type, (*fields)[c]);
        if (!value.is_ok()) {
          decoded = false;
          break;
        }
        row.push_back(*value);
      }
      if (!decoded) {
        ++report.rows_skipped_server;
        continue;
      }
      db::OpCosts scratch;
      const Status status =
          task_engine.insert_row(task_txn, table_id, row, scratch);
      if (!status.is_ok()) {
        // Task-database validation rejects the row before publication.
        ++report.rows_skipped_server;
        if (report.errors.size() < options_.max_error_details) {
          report.errors.push_back(LoadError{LoadError::Stage::kServer,
                                            def.name, 0,
                                            db::row_to_display(row), status});
        }
        continue;
      }
      task_rows[table_id].push_back(std::move(row));
    }
  }
  const auto task_commit = task_engine.commit(task_txn);
  if (!task_commit.is_ok()) return task_commit.status();
  phases_.task_load += session_.now() - phase_start;

  // ---- Phase 3: fully validate the task database ----------------------
  phase_start = session_.now();
  session_.client_compute(task_engine.total_rows() *
                          options_.validate_cost_per_row);
  SKY_RETURN_IF_ERROR(task_engine.verify_integrity());
  phases_.validate += session_.now() - phase_start;

  // ---- Phase 4: publish into the destination database ------------------
  phase_start = session_.now();
  for (const uint32_t table_id : schema_.topological_order()) {
    const std::vector<db::Row>& rows = task_rows[table_id];
    const std::string& table_name = schema_.table(table_id).name;
    size_t first = 0;
    while (first < rows.size()) {
      const size_t n = std::min(static_cast<size_t>(options_.batch_size),
                                rows.size() - first);
      const client::BatchOutcome outcome = session_.execute_batch(
          table_id, std::span<const db::Row>(&rows[first], n));
      ++report.db_calls;
      report.rows_loaded += outcome.applied;
      report.loaded_per_table[table_name] += outcome.applied;
      if (outcome.error.has_value()) {
        if (!is_constraint_error(outcome.error->status.code())) {
          return outcome.error->status;  // infrastructure failure
        }
        // Already validated; a failure here is a destination conflict
        // (e.g. re-published file). Skip the row, as SkyLoader would.
        const size_t bad = first + static_cast<size_t>(outcome.applied);
        ++report.rows_skipped_server;
        if (report.errors.size() < options_.max_error_details) {
          report.errors.push_back(
              LoadError{LoadError::Stage::kServer, table_name, 0,
                        db::row_to_display(rows[bad]),
                        outcome.error->status});
        }
        first = bad + 1;
        continue;
      }
      first += n;
    }
  }
  const Status commit_status = session_.commit();
  if (!commit_status.is_ok()) return commit_status;
  ++report.commits;
  phases_.publish += session_.now() - phase_start;

  report.elapsed = session_.now() - start;
  return report;
}

}  // namespace sky::core
