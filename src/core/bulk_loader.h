// BulkLoader: the paper's bulk-loading algorithm (Fig. 3).
//
// For each input row: parse / validate / transform / compute, then buffer
// into the array-set array for its destination table. When any array fills
// (or the memory high-water mark is hit), run a bulk-loading cycle: walk the
// arrays in parent-before-child order and batch-insert each, batch_size rows
// per database call. On a batch error, the failing row is identified via its
// array index, recorded, skipped, and loading resumes from the row after it
// (the batch is repacked) — so one bad row costs one extra round trip, and
// in the worst case (every row failing) loading degenerates to singleton
// inserts, exactly the behaviour analyzed in section 4.2.
//
// Commits are infrequent by default (section 4.5.2): only at end of file,
// or per the CommitPolicy (every N cycles / batches) when configured.
#pragma once

#include <string>
#include <string_view>

#include "catalog/parser.h"
#include "client/session.h"
#include "core/array_set.h"
#include "core/commit_policy.h"
#include "core/load_report.h"
#include "db/schema.h"

namespace sky::core {

// The load_audit primary key for a catalog file (derived from its name, so
// re-loading the same file is detected as a duplicate).
int64_t audit_id_for_file(std::string_view file_name);

struct BulkLoaderOptions {
  int64_t batch_size = 40;  // the paper's tuned optimum
  ArraySet::Config array_config;
  // When to commit (every_cycles / every_batches; defaults to the
  // infrequent-commit end-of-file-only policy). The window/durability
  // fields are consumed where the engine or sim server is built, not here.
  CommitPolicy commit;
  // Record a row in load_audit after each file (the loader's own table).
  bool write_audit_row = true;
  // Cap on retained per-row error details (counters stay exact).
  size_t max_error_details = 1000;
  // Charge per-row client parse/compute time in simulation (cost hook).
  Nanos client_parse_cost_per_row = 15 * kMicrosecond;
  // Per-cycle, per-array build/teardown cost (arrays are allocated on
  // demand and destroyed each cycle; statements re-prepared). This is the
  // overhead that makes very small array sizes slow (paper section 4.3 /
  // Fig. 6 left side).
  Nanos flush_cycle_cost_per_array = 700 * kMicrosecond;
  // Columnar ingest hot path (DESIGN.md "Columnar ingest hot path"):
  // vectorized block parse into arena-backed column batches, batches sent
  // through Session::execute_column_batch. Identical final state and error
  // accounting to the row path (the differential tests hold both to that);
  // off by default, wired by TuningProfile::columnar_ingest.
  bool columnar_ingest = false;
  // Data lines consumed per parse_block call on the columnar path.
  int64_t parse_block_rows = 512;
  // Simulated per-row parse cost on the columnar path (vectorized block
  // parse — no Row/Value materialization; mirrors
  // client::CostModel::client_row_parse_columnar).
  Nanos client_parse_cost_per_row_columnar = 5500;
  // Per-cycle, per-array cost on the columnar path. The column buffers are
  // retained across cycles (ArraySet::clear_keep_buffers — no per-cycle
  // array construction or teardown) and the array-insert statements stay
  // prepared, so what remains is per-array cycle bookkeeping: offset
  // resets, statistics, and re-arming the statement for the next call.
  Nanos flush_cycle_cost_per_array_columnar = 100 * kMicrosecond;
};

class BulkLoader {
 public:
  BulkLoader(client::Session& session, const db::Schema& schema,
             BulkLoaderOptions options);
  ~BulkLoader();

  // Load one catalog file's text. The returned report is also valid when
  // the status is OK but rows were skipped; a non-OK status means an
  // infrastructure failure (unknown table etc.), not a data error.
  Result<FileLoadReport> load_text(std::string_view file_name,
                                   std::string_view text);
  // Convenience: read the file from disk, then load_text.
  Result<FileLoadReport> load_path(const std::string& path);

  const BulkLoaderOptions& options() const { return options_; }

  // Client-side parser counters for this loader (lines, data rows, parse
  // errors, htmids computed) — aggregated across workers into
  // ParallelLoadReport by the coordinator.
  const catalog::ParserStats& parser_stats() const { return parser_->stats(); }

 private:
  // Row-at-a-time ingest (the original loop) vs. columnar block ingest; both
  // leave everything buffered flushed and feed the same report fields.
  Status ingest_rows(std::string_view text, FileLoadReport& report);
  Status ingest_columnar(std::string_view text, FileLoadReport& report);
  // The paper's batch_row: send rows [first, rows.size()) in batches; on a
  // constraint error, record it, skip the bad row, and return the index to
  // resume from; returns rows.size() when the array is fully loaded.
  // Non-constraint errors (I/O, connection loss) are infrastructure
  // failures and abort the file load instead of skipping data.
  Result<size_t> batch_row(uint32_t table_id,
                           const std::vector<db::Row>& rows, size_t first,
                           FileLoadReport& report);
  // Columnar batch_row: same skip-and-repack recovery over a column batch,
  // chunked through Session::execute_column_batch.
  Result<size_t> batch_columns(uint32_t table_id,
                               const db::ColumnBatch& rows, size_t first,
                               FileLoadReport& report);
  // One bulk-loading cycle over the array-set, parent-first.
  Status flush_arrays(FileLoadReport& report);
  // Columnar flush cycle (same ordering, commit cadence, and teardown).
  Status flush_batches(FileLoadReport& report);
  void record_error(FileLoadReport& report, LoadError error);

  client::Session& session_;
  const db::Schema& schema_;
  BulkLoaderOptions options_;
  ArraySet array_set_;
  std::unique_ptr<catalog::CatalogParser> parser_;
  uint32_t audit_table_id_ = 0;
  bool has_audit_table_ = false;
};

}  // namespace sky::core
