// Deterministic discrete-event simulation environment.
//
// SkyLoader's performance figures were measured on a production testbed
// (8-CPU Oracle server, Condor client cluster, SAN). To regenerate the
// paper's figures off-testbed we run the *real* loader and the *real*
// embedded database inside a virtual clock: blocking points (network
// round-trips, server CPU, device I/O, transaction slots, client paging)
// become simulated delays and queueing on simulated resources.
//
// Design: a cooperatively-scheduled thread-per-process simulator (in the
// style of SimPy). Exactly one simulated process executes at any moment; a
// process hands the baton over only when it blocks in delay() or
// Resource::acquire(). Scheduling is ordered by (virtual time, sequence
// number), so runs are bit-for-bit deterministic regardless of host thread
// scheduling. Because every handoff passes through one mutex, writes made by
// a process before blocking happen-before the next process's execution — the
// shared database engine can be used without additional synchronization in
// simulation mode.
//
// Fast path: when the delaying process is itself the earliest event, it
// simply advances the clock and keeps running — a single-process simulation
// (e.g. the non-bulk baseline issuing millions of round-trips) costs one
// uncontended mutex acquisition per event and no thread handoffs.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "common/units.h"

namespace sky::sim {

class Resource;

class Environment {
 public:
  Environment();
  ~Environment();

  Environment(const Environment&) = delete;
  Environment& operator=(const Environment&) = delete;

  // Register a simulated process. May be called before run() or from inside
  // a running process (e.g. a coordinator spawning workers). The body starts
  // executing at the current virtual time, after already-scheduled events.
  void spawn(std::string name, std::function<void()> body);

  // Drive the simulation until every spawned process has finished. Must be
  // called from the owning (non-process) thread. Aborts the program with a
  // diagnostic if the simulation deadlocks (all processes blocked on
  // resources with no pending events).
  void run();

  // Current virtual time.
  Nanos now() const;

  // Block the calling process for `duration` of virtual time. Must be called
  // from a process thread. Negative durations are treated as zero.
  void delay(Nanos duration);

  // Name of the currently-executing process ("" from the driver thread).
  std::string current_process_name() const;

  // Total number of scheduler events processed (diagnostics).
  uint64_t events_processed() const;

 private:
  friend class Resource;

  struct Process {
    std::string name;
    std::function<void()> body;
    std::thread thread;
    std::condition_variable cv;
    bool active = false;    // has the baton, may run
    bool finished = false;
  };

  struct Event {
    Nanos time;
    uint64_t seq;
    Process* process;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  void process_main(Process* self);
  // Pre: mu_ held. Schedule `process` to wake at `time`.
  void schedule_locked(Nanos time, Process* process);
  // Pre: mu_ held, caller is giving up the baton. Activates the next event's
  // process, or signals the driver if the simulation is finished/deadlocked.
  void dispatch_next_locked();
  // Pre: mu_ held. Block the calling process until re-activated.
  void wait_for_baton_locked(std::unique_lock<std::mutex>& lock,
                             Process* self);

  mutable std::mutex mu_;
  std::condition_variable driver_cv_;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  std::vector<std::unique_ptr<Process>> processes_;
  Process* current_ = nullptr;
  Nanos now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  int64_t live_processes_ = 0;
  bool running_ = false;
  bool shutting_down_ = false;
};

// A FIFO multi-server resource: `capacity` units, acquire blocks (in virtual
// time) until units are available. Models server CPUs, device channels,
// transaction slots, and network links.
class Resource {
 public:
  Resource(Environment& env, int64_t capacity, std::string name);

  // Acquire `units` (blocking the calling process in virtual time). FIFO: a
  // waiter never overtakes an earlier waiter, even if the earlier waiter
  // needs more units (no starvation of wide requests).
  void acquire(int64_t units = 1);
  // Returns true if the units were acquired without blocking.
  bool try_acquire(int64_t units = 1);
  void release(int64_t units = 1);

  int64_t capacity() const { return capacity_; }
  // Live-resize the resource (control plane). Growing grants queued waiters
  // immediately; shrinking lets in-flight holders drain — available() may go
  // negative until enough units release. New capacity must be positive.
  void set_capacity(int64_t capacity);
  int64_t available() const;
  // Number of processes currently queued waiting for units.
  int64_t queue_depth() const;
  const std::string& name() const { return name_; }

  struct Stats {
    uint64_t acquires = 0;         // successful acquisitions
    uint64_t waits = 0;            // acquisitions that had to queue
    Nanos total_wait = 0;          // virtual time spent queued
    Nanos max_wait = 0;
    Nanos busy_time = 0;           // integral of (in_use / capacity) dt
    int64_t max_queue_depth = 0;
  };
  Stats stats() const;

  // Utilization in [0, 1] over the interval [0, env.now()].
  double utilization() const;

 private:
  struct Waiter {
    Environment::Process* process;
    int64_t units;
    Nanos enqueue_time;
    bool granted = false;
  };

  // Pre: env_.mu_ held. Grant as many FIFO waiters as now fit.
  void grant_waiters_locked();
  // Pre: env_.mu_ held. Update the busy-time integral up to now.
  void accrue_busy_locked();

  Environment& env_;
  int64_t capacity_;  // mutable via set_capacity
  const std::string name_;
  int64_t available_;
  std::deque<Waiter*> waiters_;
  Stats stats_;
  Nanos last_accrual_ = 0;
};

}  // namespace sky::sim
