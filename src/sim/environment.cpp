#include "sim/environment.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace sky::sim {

namespace {
// Thrown into a blocked process when the environment is torn down before the
// simulation finished (e.g. a test aborted early); unwinds the process thread.
struct ProcessKilled {};
}  // namespace

Environment::Environment() = default;

Environment::~Environment() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Wake every still-blocked process so its thread can unwind.
    shutting_down_ = true;
    for (auto& process : processes_) process->cv.notify_all();
  }
  for (auto& process : processes_) {
    if (process->thread.joinable()) process->thread.join();
  }
}

void Environment::spawn(std::string name, std::function<void()> body) {
  std::unique_lock<std::mutex> lock(mu_);
  auto process = std::make_unique<Process>();
  process->name = std::move(name);
  process->body = std::move(body);
  Process* raw = process.get();
  ++live_processes_;
  schedule_locked(now_, raw);
  process->thread = std::thread([this, raw] { process_main(raw); });
  processes_.push_back(std::move(process));
}

void Environment::run() {
  std::unique_lock<std::mutex> lock(mu_);
  assert(current_ == nullptr && "run() called from inside a process");
  if (live_processes_ == 0) return;
  running_ = true;
  dispatch_next_locked();
  driver_cv_.wait(lock, [this] { return live_processes_ == 0; });
  running_ = false;
  // Join finished process threads so repeated run() calls don't accumulate.
  std::vector<std::thread> to_join;
  for (auto& process : processes_) {
    if (process->finished && process->thread.joinable()) {
      to_join.push_back(std::move(process->thread));
    }
  }
  lock.unlock();
  for (auto& thread : to_join) thread.join();
}

Nanos Environment::now() const {
  std::unique_lock<std::mutex> lock(mu_);
  return now_;
}

std::string Environment::current_process_name() const {
  std::unique_lock<std::mutex> lock(mu_);
  return current_ == nullptr ? std::string() : current_->name;
}

uint64_t Environment::events_processed() const {
  std::unique_lock<std::mutex> lock(mu_);
  return events_processed_;
}

void Environment::delay(Nanos duration) {
  if (duration < 0) duration = 0;
  std::unique_lock<std::mutex> lock(mu_);
  Process* self = current_;
  assert(self != nullptr && "delay() must be called from a process");
  assert(std::this_thread::get_id() == self->thread.get_id());
  schedule_locked(now_ + duration, self);
  // Fast path: if this process is itself the earliest event, keep the baton
  // and just advance the clock.
  const Event& top = events_.top();
  if (top.process == self) {
    now_ = top.time;
    ++events_processed_;
    events_.pop();
    return;
  }
  self->active = false;
  current_ = nullptr;
  dispatch_next_locked();
  wait_for_baton_locked(lock, self);
}

void Environment::process_main(Process* self) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    try {
      wait_for_baton_locked(lock, self);
    } catch (const ProcessKilled&) {
      self->finished = true;
      return;
    }
  }
  try {
    self->body();
  } catch (const ProcessKilled&) {
    // Environment torn down mid-run; unwind quietly.
    std::unique_lock<std::mutex> lock(mu_);
    self->finished = true;
    return;
  } catch (const std::exception& e) {
    std::fprintf(stderr,
                 "sim: process '%s' terminated with uncaught exception: %s\n",
                 self->name.c_str(), e.what());
    std::abort();
  }
  std::unique_lock<std::mutex> lock(mu_);
  self->finished = true;
  self->active = false;
  current_ = nullptr;
  --live_processes_;
  if (live_processes_ == 0 && events_.empty()) {
    driver_cv_.notify_all();
  } else {
    dispatch_next_locked();
  }
}

void Environment::schedule_locked(Nanos time, Process* process) {
  events_.push(Event{time, next_seq_++, process});
}

void Environment::dispatch_next_locked() {
  if (events_.empty()) {
    if (live_processes_ == 0) {
      driver_cv_.notify_all();
      return;
    }
    // Every live process is blocked on a resource and nothing can release:
    // a genuine simulation deadlock. Report and abort — this is a bug in the
    // model, not a recoverable data error.
    std::fprintf(stderr,
                 "sim: DEADLOCK at t=%s: %lld process(es) blocked on "
                 "resources with no pending events. Blocked processes:\n",
                 format_duration(now_).c_str(),
                 static_cast<long long>(live_processes_));
    for (const auto& process : processes_) {
      if (!process->finished) {
        std::fprintf(stderr, "  - %s\n", process->name.c_str());
      }
    }
    std::abort();
  }
  const Event top = events_.top();
  events_.pop();
  assert(top.time >= now_);
  now_ = top.time;
  ++events_processed_;
  current_ = top.process;
  top.process->active = true;
  top.process->cv.notify_one();
}

void Environment::wait_for_baton_locked(std::unique_lock<std::mutex>& lock,
                                        Process* self) {
  self->cv.wait(lock, [this, self] { return self->active || shutting_down_; });
  if (!self->active && shutting_down_) throw ProcessKilled{};
}

Resource::Resource(Environment& env, int64_t capacity, std::string name)
    : env_(env), capacity_(capacity), name_(std::move(name)),
      available_(capacity) {
  assert(capacity > 0);
}

void Resource::acquire(int64_t units) {
  assert(units > 0 && units <= capacity_);
  std::unique_lock<std::mutex> lock(env_.mu_);
  Environment::Process* self = env_.current_;
  assert(self != nullptr && "Resource::acquire must be called from a process");
  accrue_busy_locked();
  if (waiters_.empty() && available_ >= units) {
    available_ -= units;
    ++stats_.acquires;
    return;
  }
  Waiter waiter{self, units, env_.now_, false};
  waiters_.push_back(&waiter);
  ++stats_.waits;
  stats_.max_queue_depth = std::max(
      stats_.max_queue_depth, static_cast<int64_t>(waiters_.size()));
  self->active = false;
  env_.current_ = nullptr;
  env_.dispatch_next_locked();
  env_.wait_for_baton_locked(lock, self);
  assert(waiter.granted);
  const Nanos waited = env_.now_ - waiter.enqueue_time;
  stats_.total_wait += waited;
  stats_.max_wait = std::max(stats_.max_wait, waited);
}

bool Resource::try_acquire(int64_t units) {
  assert(units > 0 && units <= capacity_);
  std::unique_lock<std::mutex> lock(env_.mu_);
  if (!waiters_.empty() || available_ < units) return false;
  accrue_busy_locked();
  available_ -= units;
  ++stats_.acquires;
  return true;
}

void Resource::release(int64_t units) {
  assert(units > 0);
  std::unique_lock<std::mutex> lock(env_.mu_);
  accrue_busy_locked();
  available_ += units;
  assert(available_ <= capacity_);
  grant_waiters_locked();
}

void Resource::set_capacity(int64_t capacity) {
  assert(capacity > 0);
  std::unique_lock<std::mutex> lock(env_.mu_);
  if (capacity == capacity_) return;
  accrue_busy_locked();
  // Shift available_ by the delta so in-flight holders keep their units;
  // shrinking below in_use leaves available_ negative until holders drain.
  available_ += capacity - capacity_;
  capacity_ = capacity;
  grant_waiters_locked();
}

int64_t Resource::available() const {
  std::unique_lock<std::mutex> lock(env_.mu_);
  return available_;
}

int64_t Resource::queue_depth() const {
  std::unique_lock<std::mutex> lock(env_.mu_);
  return static_cast<int64_t>(waiters_.size());
}

Resource::Stats Resource::stats() const {
  std::unique_lock<std::mutex> lock(env_.mu_);
  return stats_;
}

double Resource::utilization() const {
  std::unique_lock<std::mutex> lock(env_.mu_);
  const Nanos elapsed = env_.now_;
  if (elapsed <= 0) return 0.0;
  // busy_time accumulates unit-nanoseconds; normalize by capacity * time.
  // Include the un-accrued tail up to now.
  const Nanos tail = (env_.now_ - last_accrual_) * (capacity_ - available_);
  return static_cast<double>(stats_.busy_time + tail) /
         (static_cast<double>(capacity_) * static_cast<double>(elapsed));
}

void Resource::grant_waiters_locked() {
  while (!waiters_.empty()) {
    Waiter* front = waiters_.front();
    if (available_ < front->units) break;
    available_ -= front->units;
    front->granted = true;
    ++stats_.acquires;
    waiters_.pop_front();
    env_.schedule_locked(env_.now_, front->process);
  }
}

void Resource::accrue_busy_locked() {
  const Nanos elapsed = env_.now_ - last_accrual_;
  if (elapsed > 0) {
    stats_.busy_time += elapsed * (capacity_ - available_);
    last_accrual_ = env_.now_;
  }
}

}  // namespace sky::sim
