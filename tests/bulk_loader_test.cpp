// BulkLoader tests: the paper's Example 1 as a literal scenario, FK
// ordering under interleaved input, error skip-and-resume recovery, commit
// policy, the database-call count analysis of section 4.2, and loader
// completeness properties over randomized inputs.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <tuple>

#include "catalog/generator.h"
#include "catalog/pq_schema.h"
#include "client/session.h"
#include "client/sim_session.h"
#include "core/bulk_loader.h"
#include "core/non_bulk_loader.h"
#include "db/engine.h"

namespace sky::core {
namespace {

// A minimal frames/objects world expressed in catalog syntax is not possible
// (tags map to the PQ schema), so Example 1 uses the PQ tables directly via
// hand-built text for ccd_frames/objects' ancestors plus OBJ/FRM rows.
// Simpler and closer to the paper: drive the loader with the real PQ
// generator, and use a dedicated text builder for the Example 1 scenario.

std::string example1_text(int frames, int objects_per_frame,
                          std::optional<int> duplicate_object_index) {
  // Builds a self-consistent mini catalog: TST/OBS/CCD scaffolding, then
  // `frames` FRM rows each followed by interleaved OBJ(+FNG...) rows.
  std::ostringstream out;
  out << "# example 1\n";
  out << "TST|1|10.0|0.0|50.0\n";
  out << "OBS|1|1|1|1|1|1000000|1.2|0.5\n";
  out << "CCD|10|1|5|120.0|10.0|0.873\n";
  int64_t object_id = 0;
  for (int f = 0; f < frames; ++f) {
    const int64_t frame_id = 1000 + f;
    out << "FRM|" << frame_id << "|10|1|" << f << "|2000000|60.0|1.2|20.5\n";
    for (int a = 0; a < 4; ++a) {
      out << "APR|" << frame_id * 10 + a << "|" << frame_id << "|" << a
          << "|2.5|1.8|25.0\n";
    }
    for (int i = 0; i < objects_per_frame; ++i) {
      const int64_t intended = object_id++;
      // A duplicated PK on the OBJ line; its fingers still reference the
      // intended id, which then never exists (cascading FK skips).
      const int64_t emitted =
          (duplicate_object_index.has_value() &&
           intended == *duplicate_object_index)
              ? intended - 1
              : intended;
      out << "OBJ|" << emitted << "|" << frame_id
          << "|120.100000|10.100000|19.5|0.01|100.0|2.0|0.1|10.0|10.0\n";
      for (int g = 0; g < 4; ++g) {
        out << "FNG|" << intended * 4 + g << "|" << intended << "|" << g
            << "|50.0|10|5.0\n";
      }
    }
  }
  return out.str();
}

class BulkLoaderTest : public ::testing::Test {
 protected:
  BulkLoaderTest()
      : schema_(catalog::make_pq_schema()),
        engine_(schema_, [] {
          db::EngineOptions options;
          options.retain_wal_records = false;
          return options;
        }()) {
    // Reference tables must exist before nightly loads.
    client::DirectSession session(engine_);
    BulkLoaderOptions options;
    options.write_audit_row = false;
    BulkLoader loader(session, schema_, options);
    const auto report = loader.load_text(
        "reference", catalog::CatalogGenerator::reference_file().text);
    EXPECT_TRUE(report.is_ok());
    EXPECT_EQ(report->total_skipped(), 0);
  }

  int64_t count(const char* table) {
    return engine_.live_view().row_count(engine_.table_id(table).value());
  }

  db::Schema schema_;
  db::Engine engine_;
};

// ------------------------------------------------------ paper's Example 1 ---

TEST_F(BulkLoaderTest, Example1InterleavedTwoTablesLoadCleanly) {
  // 5 frames and 1000 objects interleaved; array-size 1000, batch-size 40.
  // The objects array fills first, yet frames must load before objects.
  client::DirectSession session(engine_);
  BulkLoaderOptions options;
  options.batch_size = 40;
  options.array_config.default_rows = 1000;
  options.write_audit_row = false;

  std::vector<std::pair<uint32_t, uint64_t>> insert_order;
  engine_.set_insert_observer([&](uint32_t table, uint64_t row_id) {
    insert_order.emplace_back(table, row_id);
  });

  BulkLoader loader(session, schema_, options);
  const auto report =
      loader.load_text("example1", example1_text(5, 200, std::nullopt));
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report->total_skipped(), 0) << report->summary();
  EXPECT_EQ(count("ccd_frames"), 5);
  EXPECT_EQ(count("objects"), 1000);

  // Parent-before-child: within the observed insert stream, every frames
  // insert precedes every objects insert of its flush cycle; globally the
  // first objects insert comes after the first frames insert.
  const uint32_t frames_id = engine_.table_id("ccd_frames").value();
  const uint32_t objects_id = engine_.table_id("objects").value();
  ptrdiff_t first_frame = -1, first_object = -1;
  for (size_t i = 0; i < insert_order.size(); ++i) {
    if (insert_order[i].first == frames_id && first_frame < 0) {
      first_frame = static_cast<ptrdiff_t>(i);
    }
    if (insert_order[i].first == objects_id && first_object < 0) {
      first_object = static_cast<ptrdiff_t>(i);
    }
  }
  ASSERT_GE(first_frame, 0);
  ASSERT_GE(first_object, 0);
  EXPECT_LT(first_frame, first_object);
  EXPECT_TRUE(engine_.verify_integrity().is_ok());
}

TEST_F(BulkLoaderTest, Example1ErrorAtRow45SkipsExactlyThatRow) {
  // Paper walk-through: with batch-size 40, an error at (0-based) row 44 of
  // the objects array inserts rows 1-40, then 41-44, skips row 45, and
  // resumes with 46-85 and so on. We inject a duplicate PK at object #44.
  client::DirectSession session(engine_);
  BulkLoaderOptions options;
  options.batch_size = 40;
  options.array_config.default_rows = 1000;
  options.write_audit_row = false;
  BulkLoader loader(session, schema_, options);
  const auto report =
      loader.load_text("example1-error", example1_text(5, 200, 44));
  ASSERT_TRUE(report.is_ok());
  // Exactly one object skipped; its four fingers dangle and are skipped too.
  EXPECT_EQ(count("objects"), 999);
  EXPECT_EQ(report->rows_skipped_server, 1 + 4);
  ASSERT_GE(report->errors.size(), 1u);
  EXPECT_EQ(report->errors[0].table, "objects");
  EXPECT_EQ(report->errors[0].status.code(),
            ErrorCode::kConstraintPrimaryKey);
  EXPECT_TRUE(engine_.verify_integrity().is_ok());
}

// ------------------------------------------------- call-count analysis ---

TEST_F(BulkLoaderTest, BestCaseCallCountIsRowsOverBatchSize) {
  // Section 4.2: error-free loading makes ceil(rows/batch) calls per array
  // per cycle (plus the commit). Single table, one cycle.
  client::DirectSession session(engine_);
  BulkLoaderOptions options;
  options.batch_size = 40;
  options.array_config.default_rows = 10000;  // one flush cycle at EOF
  options.write_audit_row = false;
  BulkLoader loader(session, schema_, options);
  const auto report =
      loader.load_text("callcount", example1_text(4, 100, std::nullopt));
  ASSERT_TRUE(report.is_ok());
  ASSERT_EQ(report->total_skipped(), 0);
  // Expected: per-table ceil(rows/40) calls in one cycle.
  int64_t expected_calls = 0;
  for (const auto& [table, rows] : report->loaded_per_table) {
    expected_calls += (rows + 39) / 40;
  }
  EXPECT_EQ(report->db_calls, expected_calls);
  EXPECT_EQ(report->flush_cycles, 1);
}

TEST_F(BulkLoaderTest, WorstCaseDegeneratesTowardSingletons) {
  // Load the same text twice: on the second pass every row is a duplicate
  // PK, so every batch break-up yields one extra call per row region —
  // approaching one call per row (the paper's worst-case analysis).
  client::DirectSession session(engine_);
  BulkLoaderOptions options;
  options.batch_size = 40;
  options.array_config.default_rows = 10000;
  options.write_audit_row = false;
  BulkLoader loader(session, schema_, options);
  const std::string text = example1_text(2, 100, std::nullopt);
  const auto first = loader.load_text("pass1", text);
  ASSERT_TRUE(first.is_ok());
  ASSERT_EQ(first->total_skipped(), 0);

  const auto second = loader.load_text("pass2", text);
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(second->rows_loaded, 0);
  EXPECT_EQ(second->rows_skipped_server, second->rows_parsed);
  // Every row produced (at least) one database call.
  EXPECT_GE(second->db_calls, second->rows_parsed);
  EXPECT_TRUE(engine_.verify_integrity().is_ok());
}

// -------------------------------------------------------- commit policy ---

TEST_F(BulkLoaderTest, CommitPolicyPerCycles) {
  client::DirectSession session(engine_);
  BulkLoaderOptions options;
  options.batch_size = 40;
  options.array_config.default_rows = 100;  // many cycles
  options.commit.every_cycles = 2;
  options.write_audit_row = false;
  BulkLoader loader(session, schema_, options);
  const auto report =
      loader.load_text("commits", example1_text(4, 200, std::nullopt));
  ASSERT_TRUE(report.is_ok());
  EXPECT_GT(report->flush_cycles, 4);
  // Mid-file commits plus the end-of-file commit.
  EXPECT_GE(report->commits, report->flush_cycles / 2);
  EXPECT_GT(engine_.wal_stats().flushes, 2);
}

TEST_F(BulkLoaderTest, AuditRowWrittenPerFile) {
  client::DirectSession session(engine_);
  BulkLoaderOptions options;  // audit on by default
  BulkLoader loader(session, schema_, options);
  const auto report =
      loader.load_text("audited.cat", example1_text(1, 10, std::nullopt));
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(count("load_audit"), 1);
  const auto audits = engine_.live_view().scan_collect(
      engine_.table_id("load_audit").value(),
      [](const db::Row&) { return true; });
  ASSERT_EQ(audits.size(), 1u);
  EXPECT_EQ(audits[0][1].as_str(), "audited.cat");
  EXPECT_EQ(audits[0][2].as_i64(), report->rows_loaded);
}

// -------------------------------------------- generated-catalog loading ---

TEST_F(BulkLoaderTest, CleanGeneratedFileLoadsCompletely) {
  catalog::FileSpec spec;
  spec.seed = 41;
  spec.unit_id = 11;
  spec.target_bytes = 128 * 1024;
  const auto file = catalog::CatalogGenerator::generate(spec);

  client::DirectSession session(engine_);
  BulkLoaderOptions options;
  options.write_audit_row = false;
  BulkLoader loader(session, schema_, options);
  const auto report = loader.load_text("clean.cat", file.text);
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report->total_skipped(), 0) << report->summary();
  EXPECT_EQ(report->rows_loaded, file.data_lines);
  // Every table's loaded count matches the generator's clean count.
  for (const auto& [table, clean_rows] : file.clean_rows_per_table) {
    EXPECT_EQ(report->loaded_per_table.at(table), clean_rows) << table;
  }
  EXPECT_TRUE(engine_.verify_integrity().is_ok());
}

struct ErrorRateParams {
  uint64_t seed;
  double error_rate;
  int64_t batch_size;
  int64_t array_size;
};

class LoaderCompleteness : public ::testing::TestWithParam<ErrorRateParams> {};

// The central property: every parsed row either lands in the database or is
// reported as exactly one error; the repository's integrity invariants hold
// regardless of error rate, batch size, or array size.
TEST_P(LoaderCompleteness, EveryRowLoadedOrReported) {
  const auto& params = GetParam();
  const db::Schema schema = catalog::make_pq_schema();
  db::Engine engine(schema);
  client::DirectSession ref_session(engine);
  {
    BulkLoaderOptions ref_options;
    ref_options.write_audit_row = false;
    BulkLoader ref_loader(ref_session, schema, ref_options);
    ASSERT_TRUE(ref_loader
                    .load_text("reference",
                               catalog::CatalogGenerator::reference_file().text)
                    .is_ok());
  }

  catalog::FileSpec spec;
  spec.seed = params.seed;
  spec.unit_id = 21;
  spec.target_bytes = 96 * 1024;
  spec.error_rate = params.error_rate;
  const auto file = catalog::CatalogGenerator::generate(spec);

  client::DirectSession session(engine);
  BulkLoaderOptions options;
  options.batch_size = params.batch_size;
  options.array_config.default_rows = params.array_size;
  options.write_audit_row = false;
  options.max_error_details = 1 << 20;
  BulkLoader loader(session, schema, options);
  const auto report = loader.load_text("errors.cat", file.text);
  ASSERT_TRUE(report.is_ok());

  // Conservation: parsed rows = loaded + server-skipped; data lines =
  // parsed + parse errors.
  EXPECT_EQ(report->rows_parsed + report->parse_errors, file.data_lines);
  EXPECT_EQ(report->rows_loaded + report->rows_skipped_server,
            report->rows_parsed);
  // Each skip has a detail record (no cap hit in this test).
  EXPECT_EQ(static_cast<int64_t>(report->errors.size()),
            report->total_skipped());
  if (params.error_rate == 0.0) {
    EXPECT_EQ(report->total_skipped(), 0);
  } else {
    EXPECT_GE(report->total_skipped(), file.injected_errors);
  }
  // The repository never contains a constraint-violating row.
  EXPECT_TRUE(engine.verify_integrity().is_ok());
}

INSTANTIATE_TEST_SUITE_P(
    Rates, LoaderCompleteness,
    ::testing::Values(ErrorRateParams{50, 0.0, 40, 1000},
                      ErrorRateParams{51, 0.01, 40, 1000},
                      ErrorRateParams{52, 0.05, 40, 250},
                      ErrorRateParams{53, 0.10, 10, 100},
                      ErrorRateParams{54, 0.25, 7, 333},
                      ErrorRateParams{55, 0.05, 1, 50},
                      ErrorRateParams{56, 0.05, 200, 4000}));

// The same completeness property, in simulation mode: virtual-time
// execution must not change which rows load or how errors are reported.
class SimLoaderCompleteness
    : public ::testing::TestWithParam<ErrorRateParams> {};

TEST_P(SimLoaderCompleteness, SimModeConservesRows) {
  const auto& params = GetParam();
  const db::Schema schema = catalog::make_pq_schema();
  db::Engine engine(schema);
  sim::Environment env;
  client::SimServer server(env, engine, client::ServerConfig{});

  catalog::FileSpec spec;
  spec.seed = params.seed;
  spec.unit_id = 61;
  spec.target_bytes = 64 * 1024;
  spec.error_rate = params.error_rate;
  const auto file = catalog::CatalogGenerator::generate(spec);

  FileLoadReport report;
  env.spawn("loader", [&] {
    client::SimSession session(server);
    BulkLoaderOptions reference_options;
    reference_options.write_audit_row = false;
    BulkLoader reference_loader(session, schema, reference_options);
    ASSERT_TRUE(reference_loader
                    .load_text("reference",
                               catalog::CatalogGenerator::reference_file().text)
                    .is_ok());
    BulkLoaderOptions options;
    options.batch_size = params.batch_size;
    options.array_config.default_rows = params.array_size;
    options.write_audit_row = false;
    options.max_error_details = 1 << 20;
    BulkLoader loader(session, schema, options);
    auto result = loader.load_text("sim.cat", file.text);
    ASSERT_TRUE(result.is_ok());
    report = std::move(*result);
  });
  env.run();

  EXPECT_EQ(report.rows_parsed + report.parse_errors, file.data_lines);
  EXPECT_EQ(report.rows_loaded + report.rows_skipped_server,
            report.rows_parsed);
  EXPECT_EQ(static_cast<int64_t>(report.errors.size()),
            report.total_skipped());
  EXPECT_GT(report.elapsed, 0);  // virtual time moved
  EXPECT_TRUE(engine.verify_integrity().is_ok());
}

INSTANTIATE_TEST_SUITE_P(
    Rates, SimLoaderCompleteness,
    ::testing::Values(ErrorRateParams{80, 0.0, 40, 1000},
                      ErrorRateParams{81, 0.05, 40, 1000},
                      ErrorRateParams{82, 0.15, 13, 500},
                      ErrorRateParams{83, 0.05, 80, 2500}));

// Bulk and non-bulk load exactly the same set of rows.
TEST(LoaderEquivalenceTest, BulkMatchesNonBulk) {
  const db::Schema schema = catalog::make_pq_schema();
  catalog::FileSpec spec;
  spec.seed = 61;
  spec.unit_id = 31;
  spec.target_bytes = 64 * 1024;
  spec.error_rate = 0.05;
  const auto file = catalog::CatalogGenerator::generate(spec);
  const std::string reference =
      catalog::CatalogGenerator::reference_file().text;

  auto load_with = [&](bool bulk) {
    db::Engine engine(schema);
    client::DirectSession session(engine);
    BulkLoaderOptions ref_options;
    ref_options.write_audit_row = false;
    BulkLoader ref_loader(session, schema, ref_options);
    EXPECT_TRUE(ref_loader.load_text("reference", reference).is_ok());
    std::map<std::string, int64_t> loaded;
    if (bulk) {
      BulkLoaderOptions options;
      options.write_audit_row = false;
      BulkLoader loader(session, schema, options);
      const auto report = loader.load_text("f", file.text);
      EXPECT_TRUE(report.is_ok());
      loaded = report->loaded_per_table;
    } else {
      NonBulkLoader loader(session, schema);
      const auto report = loader.load_text("f", file.text);
      EXPECT_TRUE(report.is_ok());
      loaded = report->loaded_per_table;
    }
    EXPECT_TRUE(engine.verify_integrity().is_ok());
    return loaded;
  };
  EXPECT_EQ(load_with(true), load_with(false));
}

// The columnar ingest pipeline is a performance path, not a semantics
// change: on the same corrupted input it must produce a byte-identical
// repository (extent/page/slot and encoded bytes per table), the same
// report counters, and the same parser statistics as the row path.
TEST(LoaderEquivalenceTest, ColumnarMatchesRowPathExactly) {
  const db::Schema schema = catalog::make_pq_schema();
  catalog::FileSpec spec;
  spec.seed = 71;
  spec.unit_id = 33;
  spec.target_bytes = 96 * 1024;
  spec.error_rate = 0.05;
  const auto file = catalog::CatalogGenerator::generate(spec);
  const std::string reference =
      catalog::CatalogGenerator::reference_file().text;

  struct Snapshot {
    FileLoadReport report;
    catalog::ParserStats stats;
    // Per table: (extent, page, slot, encoded row bytes) in physical order.
    std::map<std::string,
             std::vector<std::tuple<uint32_t, uint32_t, uint32_t, std::string>>>
        heap;
  };
  auto load_with = [&](bool columnar) {
    db::Engine engine(schema);
    client::DirectSession session(engine);
    BulkLoaderOptions ref_options;
    ref_options.write_audit_row = false;
    BulkLoader ref_loader(session, schema, ref_options);
    EXPECT_TRUE(ref_loader.load_text("reference", reference).is_ok());

    Snapshot snap;
    BulkLoaderOptions options;
    options.write_audit_row = false;
    options.max_error_details = 1 << 20;
    options.columnar_ingest = columnar;
    BulkLoader loader(session, schema, options);
    const auto report = loader.load_text("diff.cat", file.text);
    EXPECT_TRUE(report.is_ok());
    snap.report = *report;
    snap.stats = loader.parser_stats();
    EXPECT_TRUE(engine.verify_integrity().is_ok());
    for (const auto& table : schema.tables()) {
      const uint32_t table_id = engine.table_id(table.name).value();
      auto& rows = snap.heap[table.name];
      EXPECT_TRUE(engine.live_view()
                      .scan_heap(table_id,
                                 [&](storage::SlotId slot,
                                     std::string_view bytes) {
                                   rows.emplace_back(slot.extent, slot.page,
                                                     slot.slot,
                                                     std::string(bytes));
                                 })
                      .is_ok());
    }
    return snap;
  };

  const Snapshot row = load_with(false);
  const Snapshot columnar = load_with(true);

  // Same rows loaded, same rows rejected, at both stages.
  EXPECT_EQ(columnar.report.rows_parsed, row.report.rows_parsed);
  EXPECT_EQ(columnar.report.parse_errors, row.report.parse_errors);
  EXPECT_EQ(columnar.report.rows_loaded, row.report.rows_loaded);
  EXPECT_EQ(columnar.report.rows_skipped_server,
            row.report.rows_skipped_server);
  EXPECT_EQ(columnar.report.loaded_per_table, row.report.loaded_per_table);
  EXPECT_EQ(columnar.report.errors.size(), row.report.errors.size());
  EXPECT_GT(columnar.report.rows_skipped_server, 0);  // errors exercised

  // The vectorized parser saw the same file the line parser did.
  EXPECT_EQ(columnar.stats.lines, row.stats.lines);
  EXPECT_EQ(columnar.stats.data_rows, row.stats.data_rows);
  EXPECT_EQ(columnar.stats.comment_lines, row.stats.comment_lines);
  EXPECT_EQ(columnar.stats.parse_errors, row.stats.parse_errors);
  EXPECT_EQ(columnar.stats.htmids_computed, row.stats.htmids_computed);

  // Physically identical heaps: same extent, page, slot, and bytes.
  for (const auto& [table, expected] : row.heap) {
    EXPECT_EQ(columnar.heap.at(table), expected) << table;
  }
}

}  // namespace
}  // namespace sky::core
