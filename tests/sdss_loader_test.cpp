// SDSS-style two-phase loader tests: result equivalence with SkyLoader,
// phase accounting, validation behaviour on dirty data, and the section 6
// hypothesis (single-pass is cheaper) in simulation.
#include <gtest/gtest.h>

#include "catalog/generator.h"
#include "catalog/pq_schema.h"
#include "client/sim_session.h"
#include "core/bulk_loader.h"
#include "core/sdss_loader.h"
#include "db/engine.h"

namespace sky::core {
namespace {

SdssLoaderOptions sdss_options() {
  SdssLoaderOptions options;
  options.reference_seed_text =
      catalog::CatalogGenerator::reference_file().text;
  return options;
}

void load_reference(client::Session& session, const db::Schema& schema) {
  BulkLoaderOptions options;
  options.write_audit_row = false;
  BulkLoader loader(session, schema, options);
  ASSERT_TRUE(
      loader
          .load_text("reference",
                     catalog::CatalogGenerator::reference_file().text)
          .is_ok());
}

catalog::GeneratedFile test_file(double error_rate) {
  catalog::FileSpec spec;
  spec.seed = 111;
  spec.unit_id = 41;
  spec.target_bytes = 80 * 1024;
  spec.error_rate = error_rate;
  return catalog::CatalogGenerator::generate(spec);
}

TEST(SdssLoaderTest, CleanFileMatchesSkyLoaderResults) {
  const db::Schema schema = catalog::make_pq_schema();
  const auto file = test_file(0.0);

  db::Engine sdss_engine(schema);
  {
    client::DirectSession session(sdss_engine);
    load_reference(session, schema);
    SdssStyleLoader loader(session, schema, sdss_options());
    const auto report = loader.load_text("f.cat", file.text);
    ASSERT_TRUE(report.is_ok()) << report.status().to_string();
    EXPECT_EQ(report->rows_loaded, file.data_lines);
    EXPECT_EQ(report->total_skipped(), 0);
  }
  db::Engine sky_engine(schema);
  {
    client::DirectSession session(sky_engine);
    load_reference(session, schema);
    BulkLoaderOptions options;
    options.write_audit_row = false;
    BulkLoader loader(session, schema, options);
    ASSERT_TRUE(loader.load_text("f.cat", file.text).is_ok());
  }
  // Same row counts table by table.
  for (uint32_t t = 0; t < static_cast<uint32_t>(schema.table_count()); ++t) {
    EXPECT_EQ(sdss_engine.live_view().row_count(t), sky_engine.live_view().row_count(t))
        << schema.table(t).name;
  }
  EXPECT_TRUE(sdss_engine.verify_integrity().is_ok());
}

TEST(SdssLoaderTest, DirtyDataCaughtInTaskPhase) {
  const db::Schema schema = catalog::make_pq_schema();
  const auto file = test_file(0.08);
  db::Engine engine(schema);
  client::DirectSession session(engine);
  load_reference(session, schema);
  SdssStyleLoader loader(session, schema, sdss_options());
  const auto report = loader.load_text("dirty.cat", file.text);
  ASSERT_TRUE(report.is_ok());
  EXPECT_GT(report->total_skipped(), 0);
  EXPECT_GE(report->total_skipped(), file.injected_errors);
  // Everything that survived validation published cleanly.
  EXPECT_TRUE(engine.verify_integrity().is_ok());
  EXPECT_EQ(report->rows_loaded + report->rows_skipped_server +
                report->parse_errors,
            file.data_lines);
}

TEST(SdssLoaderTest, PhaseBreakdownAccountedInSim) {
  const db::Schema schema = catalog::make_pq_schema();
  const auto file = test_file(0.0);
  db::Engine engine(schema);
  sim::Environment env;
  client::SimServer server(env, engine, client::ServerConfig{});
  SdssPhaseBreakdown phases;
  env.spawn("sdss", [&] {
    client::SimSession session(server);
    load_reference(session, schema);
    SdssStyleLoader loader(session, schema, sdss_options());
    const auto report = loader.load_text("f.cat", file.text);
    ASSERT_TRUE(report.is_ok());
    phases = loader.phases();
  });
  env.run();
  EXPECT_GT(phases.convert, 0);
  EXPECT_GT(phases.task_load, 0);
  EXPECT_GT(phases.validate, 0);
  EXPECT_GT(phases.publish, 0);
}

TEST(SdssLoaderTest, SinglePassSkyLoaderIsFasterInSim) {
  // The paper's untestable hypothesis, testable here: same data, same
  // destination substrate — SkyLoader's single pass beats the two-phase
  // convert/task/validate/publish pipeline.
  const db::Schema schema = catalog::make_pq_schema();
  const auto file = test_file(0.0);
  auto run = [&](bool sdss) {
    db::Engine engine(schema);
    sim::Environment env;
    client::SimServer server(env, engine, client::ServerConfig{});
    Nanos elapsed = 0;
    env.spawn("loader", [&] {
      client::SimSession session(server);
      load_reference(session, schema);
      const Nanos start = env.now();
      if (sdss) {
        SdssStyleLoader loader(session, schema, sdss_options());
        ASSERT_TRUE(loader.load_text("f.cat", file.text).is_ok());
      } else {
        BulkLoaderOptions options;
        options.write_audit_row = false;
        BulkLoader loader(session, schema, options);
        ASSERT_TRUE(loader.load_text("f.cat", file.text).is_ok());
      }
      elapsed = env.now() - start;
    });
    env.run();
    return elapsed;
  };
  const Nanos sky = run(false);
  const Nanos sdss = run(true);
  EXPECT_LT(sky, sdss);
  // But not absurdly so: both do the same destination inserts.
  EXPECT_GT(sdss, sky + sky / 10);
  EXPECT_LT(sdss, sky * 3);
}

}  // namespace
}  // namespace sky::core
