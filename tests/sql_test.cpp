// Tests for the textual query language: lexing, parsing, literal coercion,
// error positions, and end-to-end execution through the planner.
#include <gtest/gtest.h>

#include "db/engine.h"
#include "db/query.h"
#include "db/sql.h"

namespace sky::db {
namespace {

Schema stars_schema() {
  Schema schema;
  TableDef stars;
  stars.name = "stars";
  stars.col("star_id", ColumnType::kInt64, false);
  stars.col("field", ColumnType::kInt32, false);
  stars.col("mag", ColumnType::kDouble);
  stars.col("name", ColumnType::kString);
  stars.col("seen_at", ColumnType::kTimestamp);
  stars.primary_key = {"star_id"};
  stars.indexes.push_back(IndexDef{"idx_field_mag", {"field", "mag"}, false});
  EXPECT_TRUE(schema.add_table(stars).is_ok());
  return schema;
}

class SqlTest : public ::testing::Test {
 protected:
  SqlTest() : schema_(stars_schema()) {}
  db::Schema schema_;
};

TEST_F(SqlTest, MinimalSelect) {
  const auto spec = parse_query(schema_, "SELECT * FROM stars");
  ASSERT_TRUE(spec.is_ok()) << spec.status().to_string();
  EXPECT_EQ(spec->table, "stars");
  EXPECT_TRUE(spec->conditions.empty());
  EXPECT_FALSE(spec->order_by.has_value());
  EXPECT_EQ(spec->limit, -1);
}

TEST_F(SqlTest, FullClause) {
  const auto spec = parse_query(
      schema_,
      "select * from stars where field = 3 and mag < 18.5 "
      "order by mag desc limit 10");
  ASSERT_TRUE(spec.is_ok()) << spec.status().to_string();
  ASSERT_EQ(spec->conditions.size(), 2u);
  EXPECT_EQ(spec->conditions[0].column, "field");
  EXPECT_EQ(spec->conditions[0].op, Condition::Op::kEq);
  EXPECT_EQ(spec->conditions[0].value.as_i32(), 3);  // coerced to int32
  EXPECT_EQ(spec->conditions[1].op, Condition::Op::kLt);
  EXPECT_DOUBLE_EQ(spec->conditions[1].value.as_f64(), 18.5);
  EXPECT_EQ(spec->order_by.value(), "mag");
  EXPECT_TRUE(spec->descending);
  EXPECT_EQ(spec->limit, 10);
}

TEST_F(SqlTest, OperatorsAndLiterals) {
  const auto spec = parse_query(
      schema_,
      "SELECT * FROM stars WHERE star_id >= -5 AND mag <= 20 AND "
      "name = 'BD+17''4708' AND seen_at > 1000000");
  ASSERT_TRUE(spec.is_ok()) << spec.status().to_string();
  ASSERT_EQ(spec->conditions.size(), 4u);
  EXPECT_EQ(spec->conditions[0].op, Condition::Op::kGe);
  EXPECT_EQ(spec->conditions[0].value.as_i64(), -5);
  // Integer literal against a double column coerces to double.
  EXPECT_DOUBLE_EQ(spec->conditions[1].value.as_f64(), 20.0);
  // '' is the quote escape.
  EXPECT_EQ(spec->conditions[2].value.as_str(), "BD+17'4708");
  EXPECT_EQ(spec->conditions[3].value.as_i64(), 1000000);
}

TEST_F(SqlTest, ParseErrorsWithPositions) {
  const char* bad_queries[] = {
      "",                                         // empty
      "INSERT INTO stars",                        // not SELECT
      "SELECT name FROM stars",                   // projection unsupported
      "SELECT * FROM ghosts",                     // unknown table
      "SELECT * FROM stars WHERE ghost = 1",      // unknown column
      "SELECT * FROM stars WHERE mag <> 5",       // bad operator
      "SELECT * FROM stars WHERE mag <",          // missing literal
      "SELECT * FROM stars WHERE name = unquoted",// bare word literal
      "SELECT * FROM stars ORDER BY ghost",       // unknown order column
      "SELECT * FROM stars LIMIT x",              // bad limit
      "SELECT * FROM stars LIMIT -2",             // negative limit
      "SELECT * FROM stars trailing junk",        // trailing tokens
      "SELECT * FROM stars WHERE name = 'open",   // unterminated string
      "SELECT * FROM stars WHERE field = 3000000000",  // int32 overflow
      "SELECT * FROM stars WHERE field = 1.5",    // float vs int column
      "SELECT * FROM stars WHERE name = 7",       // number vs string column
  };
  for (const char* query : bad_queries) {
    EXPECT_FALSE(parse_query(schema_, query).is_ok()) << query;
  }
  // Errors carry a position marker.
  const auto status =
      parse_query(schema_, "SELECT * FROM stars WHERE mag @ 5").status();
  EXPECT_NE(status.message().find("position"), std::string::npos);
}

TEST_F(SqlTest, EndToEndThroughPlanner) {
  Engine engine(schema_);
  const uint64_t txn = engine.begin_transaction();
  OpCosts costs;
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(engine
                    .insert_row(txn, 0,
                                {Value::i64(i),
                                 Value::i32(static_cast<int32_t>(i % 5)),
                                 Value::f64(15.0 + static_cast<double>(i) * 0.1),
                                 Value::str("s" + std::to_string(i)),
                                 Value::timestamp(i * 1000)},
                                costs)
                    .is_ok());
  }
  ASSERT_TRUE(engine.commit(txn).is_ok());

  QueryPlanner planner(engine);
  const auto spec = parse_query(
      schema_,
      "SELECT * FROM stars WHERE field = 2 AND mag < 20 ORDER BY mag LIMIT 3");
  ASSERT_TRUE(spec.is_ok());
  const auto result = planner.execute(*spec);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result->plan, "INDEX RANGE idx_field_mag");
  ASSERT_EQ(result->rows.size(), 3u);
  for (size_t i = 1; i < result->rows.size(); ++i) {
    EXPECT_LE(result->rows[i - 1][2].as_f64(), result->rows[i][2].as_f64());
  }
  for (const Row& row : result->rows) {
    EXPECT_EQ(row[1].as_i32(), 2);
    EXPECT_LT(row[2].as_f64(), 20.0);
  }
}

TEST_F(SqlTest, KeywordsAreCaseInsensitive) {
  const auto spec = parse_query(
      schema_, "SeLeCt * FrOm stars WhErE mag > 1 oRdEr By mag AsC lImIt 5");
  ASSERT_TRUE(spec.is_ok()) << spec.status().to_string();
  EXPECT_FALSE(spec->descending);
  EXPECT_EQ(spec->limit, 5);
}

}  // namespace
}  // namespace sky::db
