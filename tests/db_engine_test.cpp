// Engine tests: constraint enforcement, JDBC batch semantics, transactions
// and rollback, index maintenance, queries, telemetry, thread safety, and a
// randomized differential test of the whole insert path.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <thread>

#include "common/rng.h"
#include "db/engine.h"

namespace sky::db {
namespace {

// Two-table parent/child fixture (the paper's frames/objects Example 1).
Schema frames_objects_schema() {
  Schema schema;
  TableDef frames;
  frames.name = "frames";
  frames.col("frame_id", ColumnType::kInt64, false);
  frames.col("exposure", ColumnType::kDouble);
  frames.primary_key = {"frame_id"};
  frames.checks.push_back(CheckConstraint{"exposure", 0.0, 3600.0});
  EXPECT_TRUE(schema.add_table(frames).is_ok());

  TableDef objects;
  objects.name = "objects";
  objects.col("object_id", ColumnType::kInt64, false);
  objects.col("frame_id", ColumnType::kInt64, false);
  objects.col("ra", ColumnType::kDouble);
  objects.col("dec", ColumnType::kDouble);
  objects.col("mag", ColumnType::kDouble);
  objects.primary_key = {"object_id"};
  objects.foreign_keys.push_back(ForeignKey{{"frame_id"}, "frames"});
  objects.indexes.push_back(IndexDef{"idx_mag", {"mag"}, false});
  objects.checks.push_back(CheckConstraint{"ra", 0.0, 360.0});
  objects.checks.push_back(CheckConstraint{"dec", -90.0, 90.0});
  EXPECT_TRUE(schema.add_table(objects).is_ok());
  return schema;
}

Row frame_row(int64_t id, double exposure = 60.0) {
  return {Value::i64(id), Value::f64(exposure)};
}

Row object_row(int64_t id, int64_t frame, double ra = 10.0, double dec = 5.0,
               double mag = 18.0) {
  return {Value::i64(id), Value::i64(frame), Value::f64(ra), Value::f64(dec),
          Value::f64(mag)};
}

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : engine_(frames_objects_schema()) {
    frames_ = engine_.table_id("frames").value();
    objects_ = engine_.table_id("objects").value();
  }

  Status insert(uint64_t txn, uint32_t table, const Row& row) {
    OpCosts costs;
    return engine_.insert_row(txn, table, row, costs);
  }

  Engine engine_;
  uint32_t frames_ = 0;
  uint32_t objects_ = 0;
};

TEST_F(EngineTest, BasicInsertAndCount) {
  const uint64_t txn = engine_.begin_transaction();
  ASSERT_TRUE(insert(txn, frames_, frame_row(1)).is_ok());
  ASSERT_TRUE(insert(txn, objects_, object_row(100, 1)).is_ok());
  EXPECT_EQ(engine_.live_view().row_count(frames_), 1);
  EXPECT_EQ(engine_.live_view().row_count(objects_), 1);
  EXPECT_EQ(engine_.total_rows(), 2);
  ASSERT_TRUE(engine_.commit(txn).is_ok());
  EXPECT_TRUE(engine_.verify_integrity().is_ok());
}

TEST_F(EngineTest, PrimaryKeyViolation) {
  const uint64_t txn = engine_.begin_transaction();
  ASSERT_TRUE(insert(txn, frames_, frame_row(1)).is_ok());
  const Status dup = insert(txn, frames_, frame_row(1, 99.0));
  EXPECT_EQ(dup.code(), ErrorCode::kConstraintPrimaryKey);
  EXPECT_EQ(engine_.live_view().row_count(frames_), 1);
  // Original row unchanged.
  const auto row = engine_.live_view().pk_lookup(frames_, {Value::i64(1)});
  ASSERT_TRUE(row.is_ok());
  EXPECT_DOUBLE_EQ((*row)[1].as_f64(), 60.0);
}

TEST_F(EngineTest, ForeignKeyViolation) {
  const uint64_t txn = engine_.begin_transaction();
  const Status orphan = insert(txn, objects_, object_row(100, 42));
  EXPECT_EQ(orphan.code(), ErrorCode::kConstraintForeignKey);
  EXPECT_EQ(engine_.live_view().row_count(objects_), 0);
  // After the parent exists, the same row loads.
  ASSERT_TRUE(insert(txn, frames_, frame_row(42)).is_ok());
  EXPECT_TRUE(insert(txn, objects_, object_row(100, 42)).is_ok());
}

TEST_F(EngineTest, CheckConstraintViolations) {
  const uint64_t txn = engine_.begin_transaction();
  ASSERT_TRUE(insert(txn, frames_, frame_row(1)).is_ok());
  EXPECT_EQ(insert(txn, objects_, object_row(1, 1, 400.0)).code(),
            ErrorCode::kConstraintCheck);  // ra out of range
  EXPECT_EQ(insert(txn, objects_, object_row(2, 1, 10.0, -95.0)).code(),
            ErrorCode::kConstraintCheck);  // dec out of range
  EXPECT_EQ(insert(txn, frames_, frame_row(2, -1.0)).code(),
            ErrorCode::kConstraintCheck);  // exposure negative
  Row nan_row = object_row(3, 1);
  nan_row[4] = Value::f64(std::nan(""));
  EXPECT_EQ(insert(txn, objects_, nan_row).code(),
            ErrorCode::kConstraintCheck);
}

TEST_F(EngineTest, NotNullAndTypeMismatch) {
  const uint64_t txn = engine_.begin_transaction();
  Row null_pk = frame_row(1);
  null_pk[0] = Value::null();
  EXPECT_EQ(insert(txn, frames_, null_pk).code(),
            ErrorCode::kConstraintNotNull);
  Row wrong_type = frame_row(1);
  wrong_type[1] = Value::str("sixty");
  EXPECT_EQ(insert(txn, frames_, wrong_type).code(),
            ErrorCode::kTypeMismatch);
  Row wrong_arity = {Value::i64(1)};
  EXPECT_EQ(insert(txn, frames_, wrong_arity).code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(EngineTest, NullForeignKeyPasses) {
  // SQL MATCH SIMPLE: a NULL FK column passes the constraint. Note the
  // schema must allow NULL in the FK column for this path.
  Schema schema;
  TableDef parent;
  parent.name = "p";
  parent.col("id", ColumnType::kInt64, false);
  parent.primary_key = {"id"};
  ASSERT_TRUE(schema.add_table(parent).is_ok());
  TableDef child;
  child.name = "c";
  child.col("id", ColumnType::kInt64, false);
  child.col("p_id", ColumnType::kInt64, true);
  child.primary_key = {"id"};
  child.foreign_keys.push_back(ForeignKey{{"p_id"}, "p"});
  ASSERT_TRUE(schema.add_table(child).is_ok());
  Engine engine(std::move(schema));
  const uint64_t txn = engine.begin_transaction();
  OpCosts costs;
  EXPECT_TRUE(engine
                  .insert_row(txn, engine.table_id("c").value(),
                              {Value::i64(1), Value::null()}, costs)
                  .is_ok());
}

// ------------------------------------------------------- batch semantics ---

TEST_F(EngineTest, BatchAppliesAllWhenClean) {
  const uint64_t txn = engine_.begin_transaction();
  std::vector<Row> rows;
  for (int i = 0; i < 40; ++i) rows.push_back(frame_row(i));
  const BatchResult result = engine_.insert_batch(txn, frames_, rows);
  EXPECT_EQ(result.rows_applied, 40);
  EXPECT_FALSE(result.error.has_value());
  EXPECT_EQ(engine_.live_view().row_count(frames_), 40);
}

TEST_F(EngineTest, BatchStopsAtFirstErrorEarlierRowsStay) {
  const uint64_t txn = engine_.begin_transaction();
  ASSERT_TRUE(insert(txn, frames_, frame_row(5)).is_ok());
  std::vector<Row> rows;
  for (int i = 0; i < 10; ++i) rows.push_back(frame_row(i));
  // Row index 5 duplicates the pre-inserted key.
  const BatchResult result = engine_.insert_batch(txn, frames_, rows);
  EXPECT_EQ(result.rows_applied, 5);  // rows 0..4 applied
  ASSERT_TRUE(result.error.has_value());
  EXPECT_EQ(result.error->row_index, 5u);
  EXPECT_EQ(result.error->status.code(), ErrorCode::kConstraintPrimaryKey);
  // Rows 6..9 were NOT applied (JDBC: remainder of batch discarded).
  EXPECT_EQ(engine_.live_view().row_count(frames_), 6);  // 0..4 plus the original 5
  EXPECT_FALSE(engine_.live_view().pk_lookup(frames_, {Value::i64(7)}).is_ok());
}

TEST_F(EngineTest, EmptyBatchIsNoOp) {
  const uint64_t txn = engine_.begin_transaction();
  const BatchResult result = engine_.insert_batch(txn, frames_, {});
  EXPECT_EQ(result.rows_applied, 0);
  EXPECT_FALSE(result.error.has_value());
}

TEST_F(EngineTest, BatchCostsAccumulate) {
  const uint64_t txn = engine_.begin_transaction();
  std::vector<Row> rows;
  for (int i = 0; i < 100; ++i) rows.push_back(frame_row(i));
  const BatchResult result = engine_.insert_batch(txn, frames_, rows);
  EXPECT_EQ(result.costs.rows_applied, 100);
  EXPECT_EQ(result.costs.index_updates, 100);  // PK tree only
  EXPECT_GT(result.costs.index_node_visits, 100);
  EXPECT_GT(result.costs.heap_bytes, 0);
  EXPECT_GT(result.costs.wal_bytes, 0);
  EXPECT_GT(result.costs.check_evals, 0);
}

// ----------------------------------------------------------- transactions ---

TEST_F(EngineTest, CommitFlushesWal) {
  const uint64_t txn = engine_.begin_transaction();
  ASSERT_TRUE(insert(txn, frames_, frame_row(1)).is_ok());
  const auto commit = engine_.commit(txn);
  ASSERT_TRUE(commit.is_ok());
  EXPECT_GT(commit->wal_bytes_flushed, 0);
  EXPECT_EQ(engine_.wal_stats().flushes, 1);
  // Unknown transaction errors.
  EXPECT_FALSE(engine_.commit(999).is_ok());
  EXPECT_FALSE(engine_.rollback(999).is_ok());
}

TEST_F(EngineTest, RollbackUndoesInserts) {
  const uint64_t keep = engine_.begin_transaction();
  ASSERT_TRUE(insert(keep, frames_, frame_row(1)).is_ok());
  ASSERT_TRUE(engine_.commit(keep).is_ok());

  const uint64_t doomed = engine_.begin_transaction();
  ASSERT_TRUE(insert(doomed, frames_, frame_row(2)).is_ok());
  ASSERT_TRUE(insert(doomed, objects_, object_row(10, 2)).is_ok());
  EXPECT_EQ(engine_.total_rows(), 3);
  ASSERT_TRUE(engine_.rollback(doomed).is_ok());
  EXPECT_EQ(engine_.total_rows(), 1);
  EXPECT_FALSE(engine_.live_view().pk_lookup(frames_, {Value::i64(2)}).is_ok());
  EXPECT_TRUE(engine_.live_view().pk_lookup(frames_, {Value::i64(1)}).is_ok());
  EXPECT_TRUE(engine_.verify_integrity().is_ok());
  // Rolled-back keys can be re-inserted.
  const uint64_t retry = engine_.begin_transaction();
  EXPECT_TRUE(insert(retry, frames_, frame_row(2)).is_ok());
}

TEST_F(EngineTest, InsertIntoUnknownTransactionFails) {
  OpCosts costs;
  EXPECT_EQ(engine_.insert_row(12345, frames_, frame_row(1), costs).code(),
            ErrorCode::kFailedPrecondition);
}

TEST_F(EngineTest, TransactionGateLimitsConcurrency) {
  Schema schema = frames_objects_schema();
  EngineOptions options;
  options.concurrency.max_concurrent_transactions = 2;
  Engine engine(std::move(schema), options);
  const uint64_t t1 = engine.begin_transaction();
  const uint64_t t2 = engine.begin_transaction();
  std::atomic<bool> third_started{false};
  std::thread blocked([&] {
    const uint64_t t3 = engine.begin_transaction();  // blocks until a slot
    third_started = true;
    ASSERT_TRUE(engine.commit(t3).is_ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_started.load());
  ASSERT_TRUE(engine.commit(t1).is_ok());
  blocked.join();
  EXPECT_TRUE(third_started.load());
  EXPECT_GE(engine.concurrency_stats().transaction_gate.waits, 1u);
  ASSERT_TRUE(engine.commit(t2).is_ok());
}

TEST_F(EngineTest, LeastLoadedExtentAssignmentBalancesSkew) {
  Schema schema = frames_objects_schema();
  EngineOptions options;
  options.heap_extents = 4;
  options.extent_assignment = ExtentAssignment::kLeastLoaded;
  Engine engine(std::move(schema), options);
  const uint32_t frames = engine.table_id("frames").value();
  OpCosts costs;
  // Sequential single-row transactions: least-loaded assignment must cycle
  // through the extents (each insert makes its extent the heaviest), ending
  // with all four populated and byte-balanced to within one row.
  for (int i = 0; i < 16; ++i) {
    const uint64_t txn = engine.begin_transaction();
    ASSERT_TRUE(engine.insert_row(txn, frames, frame_row(i), costs).is_ok());
    ASSERT_TRUE(engine.commit(txn).is_ok());
  }
  const auto stats = engine.heap_extent_stats(frames);
  ASSERT_TRUE(stats.is_ok());
  ASSERT_EQ(stats->size(), 4u);
  for (const auto& extent : *stats) {
    EXPECT_EQ(extent.rows, 4) << "least-loaded should balance equal rows";
  }
  EXPECT_TRUE(engine.verify_integrity().is_ok());

  // Now skew extent 0 hard with forced placements; subsequent least-loaded
  // transactions must steer around it.
  {
    const uint64_t txn = engine.begin_transaction();
    for (int i = 100; i < 140; ++i) {
      ASSERT_TRUE(engine
                      .insert_row(txn, frames, frame_row(i), costs,
                                  /*extent_override=*/0)
                      .is_ok());
    }
    ASSERT_TRUE(engine.commit(txn).is_ok());
  }
  for (int i = 200; i < 206; ++i) {
    const uint64_t txn = engine.begin_transaction();
    ASSERT_TRUE(engine.insert_row(txn, frames, frame_row(i), costs).is_ok());
    ASSERT_TRUE(engine.commit(txn).is_ok());
  }
  const auto after = engine.heap_extent_stats(frames);
  ASSERT_TRUE(after.is_ok());
  // Extent 0 held 44 rows before the six balanced inserts; none land there.
  EXPECT_EQ((*after)[0].rows, 44);
}

TEST_F(EngineTest, SecondaryIndexRangeQuery) {
  const uint64_t txn = engine_.begin_transaction();
  ASSERT_TRUE(insert(txn, frames_, frame_row(1)).is_ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        insert(txn, objects_, object_row(i, 1, 10, 5, 15.0 + i * 0.1))
            .is_ok());
  }
  const auto bright = engine_.live_view().index_range(objects_, "idx_mag",
                                          {Value::f64(15.0)},
                                          {Value::f64(16.0)});
  ASSERT_TRUE(bright.is_ok());
  EXPECT_EQ(bright->size(), 10u);  // mags 15.0 .. 15.9
  for (const Row& row : *bright) {
    EXPECT_LT(row[4].as_f64(), 16.0);
  }
}

TEST_F(EngineTest, DisableAndRebuildIndex) {
  ASSERT_TRUE(engine_.set_index_enabled(objects_, "idx_mag", false).is_ok());
  const uint64_t txn = engine_.begin_transaction();
  ASSERT_TRUE(insert(txn, frames_, frame_row(1)).is_ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(insert(txn, objects_, object_row(i, 1)).is_ok());
  }
  // Disabled index rejects queries.
  EXPECT_EQ(engine_.live_view()
                .index_range(objects_, "idx_mag", {Value::f64(0)},
                             {Value::f64(100)})
                .status()
                .code(),
            ErrorCode::kFailedPrecondition);
  // Rebuild restores it with all rows.
  ASSERT_TRUE(engine_.rebuild_index(objects_, "idx_mag").is_ok());
  const auto all = engine_.live_view().index_range(objects_, "idx_mag", {Value::f64(0)},
                                       {Value::f64(100)});
  ASSERT_TRUE(all.is_ok());
  EXPECT_EQ(all->size(), 20u);
  EXPECT_TRUE(engine_.verify_integrity().is_ok());
  // Unknown index errors.
  EXPECT_FALSE(engine_.set_index_enabled(objects_, "ghost", true).is_ok());
  EXPECT_FALSE(engine_.rebuild_index(objects_, "ghost").is_ok());
}

TEST_F(EngineTest, IndexMaintenanceCostVisible) {
  // With the secondary index enabled, inserts touch more index structures.
  auto run = [this](bool enabled) {
    Engine engine(frames_objects_schema());
    const uint32_t frames = engine.table_id("frames").value();
    const uint32_t objects = engine.table_id("objects").value();
    if (!enabled) {
      EXPECT_TRUE(
          engine.set_index_enabled(objects, "idx_mag", false).is_ok());
    }
    const uint64_t txn = engine.begin_transaction();
    OpCosts setup;
    EXPECT_TRUE(engine.insert_row(txn, frames, frame_row(1), setup).is_ok());
    std::vector<Row> rows;
    for (int i = 0; i < 200; ++i) rows.push_back(object_row(i, 1));
    return engine.insert_batch(txn, objects, rows).costs.index_updates;
  };
  EXPECT_GT(run(true), run(false));
}

TEST_F(EngineTest, BulkLoadSortedPreload) {
  std::vector<Row> rows;
  for (int i = 0; i < 1000; ++i) rows.push_back(frame_row(i));
  ASSERT_TRUE(engine_.bulk_load_sorted(frames_, rows).is_ok());
  EXPECT_EQ(engine_.live_view().row_count(frames_), 1000);
  EXPECT_TRUE(engine_.live_view().pk_lookup(frames_, {Value::i64(500)}).is_ok());
  EXPECT_TRUE(engine_.verify_integrity().is_ok());
  // Preload requires empty table.
  EXPECT_EQ(engine_.bulk_load_sorted(frames_, rows).code(),
            ErrorCode::kFailedPrecondition);
  // Loading continues on top of preloaded data.
  const uint64_t txn = engine_.begin_transaction();
  EXPECT_TRUE(insert(txn, frames_, frame_row(5000)).is_ok());
  EXPECT_EQ(insert(txn, frames_, frame_row(500)).code(),
            ErrorCode::kConstraintPrimaryKey);
}

TEST_F(EngineTest, BulkLoadSortedRejectsUnsorted) {
  EXPECT_FALSE(
      engine_.bulk_load_sorted(frames_, {frame_row(2), frame_row(1)}).is_ok());
}

// ----------------------------------------------------------------- queries ---

TEST_F(EngineTest, PkRangeAndScan) {
  const uint64_t txn = engine_.begin_transaction();
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(insert(txn, frames_, frame_row(i, i * 10.0)).is_ok());
  }
  const auto range =
      engine_.live_view().pk_range(frames_, {Value::i64(10)}, {Value::i64(20)});
  ASSERT_TRUE(range.is_ok());
  EXPECT_EQ(range->size(), 10u);
  const auto filtered = engine_.live_view().scan_collect(frames_, [](const Row& row) {
    return row[1].as_f64() >= 250.0;
  });
  EXPECT_EQ(filtered.size(), 5u);  // 250, 260, 270, 280, 290
}

TEST_F(EngineTest, PkLookupErrors) {
  EXPECT_FALSE(engine_.live_view().pk_lookup(frames_, {Value::i64(1)}).is_ok());
  EXPECT_FALSE(engine_.live_view().pk_lookup(frames_, {Value::i64(1), Value::i64(2)})
                   .is_ok());  // arity
  EXPECT_FALSE(engine_.live_view().pk_lookup(999, {Value::i64(1)}).is_ok());
}

// --------------------------------------------------------------- telemetry ---

TEST_F(EngineTest, WalRecordsRetainedWhenRequested) {
  EngineOptions options;
  options.retain_wal_records = true;
  Engine engine(frames_objects_schema(), options);
  const uint64_t txn = engine.begin_transaction();
  OpCosts costs;
  ASSERT_TRUE(engine
                  .insert_row(txn, engine.table_id("frames").value(),
                              frame_row(1), costs)
                  .is_ok());
  ASSERT_TRUE(engine.commit(txn).is_ok());
  ASSERT_EQ(engine.wal_records().size(), 2u);
  EXPECT_EQ(engine.wal_records()[0].type, storage::WalRecordType::kInsert);
  EXPECT_EQ(engine.wal_records()[1].type, storage::WalRecordType::kCommit);
  // The insert payload replays to the original row.
  const auto replayed = decode_row(engine.wal_records()[0].payload);
  ASSERT_TRUE(replayed.is_ok());
  EXPECT_EQ((*replayed)[0].as_i64(), 1);
}

TEST_F(EngineTest, InsertObserverSeesOrder) {
  std::vector<uint32_t> order;
  engine_.set_insert_observer(
      [&](uint32_t table, uint64_t) { order.push_back(table); });
  const uint64_t txn = engine_.begin_transaction();
  ASSERT_TRUE(insert(txn, frames_, frame_row(1)).is_ok());
  ASSERT_TRUE(insert(txn, objects_, object_row(1, 1)).is_ok());
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], frames_);
  EXPECT_EQ(order[1], objects_);
}

// ------------------------------------------------------------ thread safety ---

TEST_F(EngineTest, ConcurrentLoadersKeepIntegrity) {
  // Seed a parent frame per worker, then hammer objects from 4 threads.
  const uint64_t setup = engine_.begin_transaction();
  for (int w = 0; w < 4; ++w) {
    ASSERT_TRUE(insert(setup, frames_, frame_row(w)).is_ok());
  }
  ASSERT_TRUE(engine_.commit(setup).is_ok());

  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      const uint64_t txn = engine_.begin_transaction();
      std::vector<Row> rows;
      for (int i = 0; i < 500; ++i) {
        rows.push_back(object_row(w * 10000 + i, w));
      }
      for (size_t start = 0; start < rows.size(); start += 40) {
        const size_t n = std::min<size_t>(40, rows.size() - start);
        const auto result = engine_.insert_batch(
            txn, objects_, std::span<const Row>(&rows[start], n));
        if (result.error.has_value()) ++failures;
      }
      if (!engine_.commit(txn).is_ok()) ++failures;
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(engine_.live_view().row_count(objects_), 2000);
  EXPECT_TRUE(engine_.verify_integrity().is_ok());
}

// ----------------------------------------------------- columnar batch path ---

ColumnBatch column_frames(const Schema& schema,
                          std::initializer_list<int64_t> ids) {
  ColumnBatch batch(schema.table(schema.table_id("frames").value()));
  for (int64_t id : ids) {
    batch.push_i64(0, id);
    batch.push_f64(1, 60.0);
  }
  return batch;
}

TEST_F(EngineTest, ColumnBatchMatchesRowBatchFinalState) {
  // The same rows through insert_batch (oracle) and insert_column_batch
  // (fast path: presorted keys, one latch window) — physically identical
  // heap state, identical row counts, identical index contents.
  const Schema schema = frames_objects_schema();
  Engine row_engine(schema);
  Engine col_engine(schema);
  const uint32_t frames = row_engine.table_id("frames").value();
  const uint32_t objects = row_engine.table_id("objects").value();

  std::vector<Row> frame_rows, object_rows;
  ColumnBatch frame_cols(schema.table(frames));
  ColumnBatch object_cols(schema.table(objects));
  for (int i = 0; i < 200; ++i) {
    frame_rows.push_back(frame_row(i, i * 1.5));
    frame_cols.push_i64(0, i);
    frame_cols.push_f64(1, i * 1.5);
  }
  for (int i = 0; i < 500; ++i) {
    object_rows.push_back(object_row(i, i % 200, 10.0 + i * 0.01, -5.0, 19.0));
    object_cols.push_i64(0, i);
    object_cols.push_i64(1, i % 200);
    object_cols.push_f64(2, 10.0 + i * 0.01);
    object_cols.push_f64(3, -5.0);
    object_cols.push_f64(4, 19.0);
  }

  const uint64_t row_txn = row_engine.begin_transaction();
  ASSERT_EQ(row_engine.insert_batch(row_txn, frames, frame_rows).rows_applied,
            200);
  ASSERT_EQ(row_engine.insert_batch(row_txn, objects, object_rows).rows_applied,
            500);
  ASSERT_TRUE(row_engine.commit(row_txn).is_ok());

  const uint64_t col_txn = col_engine.begin_transaction();
  const BatchResult fr = col_engine.insert_column_batch(col_txn, frames,
                                                        frame_cols);
  ASSERT_FALSE(fr.error.has_value()) << fr.error->status.to_string();
  EXPECT_EQ(fr.rows_applied, 200);
  const BatchResult ob = col_engine.insert_column_batch(col_txn, objects,
                                                        object_cols);
  ASSERT_FALSE(ob.error.has_value()) << ob.error->status.to_string();
  EXPECT_EQ(ob.rows_applied, 500);
  ASSERT_TRUE(col_engine.commit(col_txn).is_ok());

  EXPECT_TRUE(row_engine.verify_integrity().is_ok());
  EXPECT_TRUE(col_engine.verify_integrity().is_ok());

  // Physically identical heaps: same extent/page/slot layout, same bytes.
  for (uint32_t tid : {frames, objects}) {
    std::vector<std::tuple<uint32_t, uint32_t, uint32_t, std::string>> a, b;
    ASSERT_TRUE(row_engine.live_view()
                    .scan_heap(tid,
                               [&](storage::SlotId slot,
                                   std::string_view bytes) {
                                 a.emplace_back(slot.extent, slot.page,
                                                slot.slot, std::string(bytes));
                               })
                    .is_ok());
    ASSERT_TRUE(col_engine.live_view()
                    .scan_heap(tid,
                               [&](storage::SlotId slot,
                                   std::string_view bytes) {
                                 b.emplace_back(slot.extent, slot.page,
                                                slot.slot, std::string(bytes));
                               })
                    .is_ok());
    EXPECT_EQ(a, b) << "table " << tid;
  }

  // Identical secondary-index contents (same rows, same iteration order).
  const auto row_mag = row_engine.live_view().index_range(
      objects, "idx_mag", {Value::f64(18.0)}, {Value::f64(20.0)});
  const auto col_mag = col_engine.live_view().index_range(
      objects, "idx_mag", {Value::f64(18.0)}, {Value::f64(20.0)});
  ASSERT_TRUE(row_mag.is_ok());
  ASSERT_TRUE(col_mag.is_ok());
  ASSERT_EQ(row_mag->size(), col_mag->size());
  for (size_t i = 0; i < row_mag->size(); ++i) {
    ASSERT_EQ((*row_mag)[i].size(), (*col_mag)[i].size());
    for (size_t c = 0; c < (*row_mag)[i].size(); ++c) {
      EXPECT_EQ((*row_mag)[i][c], (*col_mag)[i][c]) << i << "," << c;
    }
  }
}

TEST_F(EngineTest, ColumnBatchStopsAtFirstErrorJdbcSemantics) {
  const Schema schema = frames_objects_schema();
  const uint64_t txn = engine_.begin_transaction();
  ASSERT_TRUE(insert(txn, frames_, frame_row(5)).is_ok());
  // Keys 0..9: index 5 duplicates the pre-inserted key.
  const ColumnBatch batch =
      column_frames(schema, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  const BatchResult result = engine_.insert_column_batch(txn, frames_, batch);
  EXPECT_EQ(result.rows_applied, 5);
  ASSERT_TRUE(result.error.has_value());
  EXPECT_EQ(result.error->row_index, 5u);
  EXPECT_EQ(result.error->status.code(), ErrorCode::kConstraintPrimaryKey);
  // Remainder of the batch discarded, exactly like insert_batch.
  EXPECT_EQ(engine_.live_view().row_count(frames_), 6);
  EXPECT_FALSE(engine_.live_view().pk_lookup(frames_, {Value::i64(7)}).is_ok());
  EXPECT_TRUE(engine_.verify_integrity().is_ok());
}

TEST_F(EngineTest, ColumnBatchSubrangeReportsRelativeErrorIndex) {
  const Schema schema = frames_objects_schema();
  const uint64_t txn = engine_.begin_transaction();
  ASSERT_TRUE(insert(txn, frames_, frame_row(8)).is_ok());
  const ColumnBatch batch =
      column_frames(schema, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  // Send rows [6, 10): the duplicate (key 8) is at relative index 2.
  const BatchResult result =
      engine_.insert_column_batch(txn, frames_, batch, /*first=*/6,
                                  /*count=*/4);
  EXPECT_EQ(result.rows_applied, 2);  // keys 6 and 7
  ASSERT_TRUE(result.error.has_value());
  EXPECT_EQ(result.error->row_index, 2u);
  EXPECT_EQ(engine_.live_view().row_count(frames_), 3);  // 6, 7 and the original 8
}

TEST_F(EngineTest, ColumnBatchUnsortedKeysFallBackWithSameSemantics) {
  // Unsorted primary keys are ineligible for the one-latch fast path; the
  // rows must still land with identical final state via the fallback.
  const Schema schema = frames_objects_schema();
  Engine col_engine(schema);
  const uint32_t frames = col_engine.table_id("frames").value();
  const ColumnBatch batch = column_frames(schema, {9, 3, 7, 1, 5});
  const uint64_t txn = col_engine.begin_transaction();
  const BatchResult result = col_engine.insert_column_batch(txn, frames, batch);
  EXPECT_EQ(result.rows_applied, 5);
  EXPECT_FALSE(result.error.has_value());
  ASSERT_TRUE(col_engine.commit(txn).is_ok());
  EXPECT_TRUE(col_engine.verify_integrity().is_ok());
  for (int64_t id : {1, 3, 5, 7, 9}) {
    EXPECT_TRUE(col_engine.live_view().pk_lookup(frames, {Value::i64(id)}).is_ok()) << id;
  }
}

TEST_F(EngineTest, ColumnBatchRollbackUndoesTheRun) {
  const Schema schema = frames_objects_schema();
  const uint64_t txn = engine_.begin_transaction();
  const ColumnBatch batch = column_frames(schema, {0, 1, 2, 3, 4});
  ASSERT_EQ(engine_.insert_column_batch(txn, frames_, batch).rows_applied, 5);
  EXPECT_EQ(engine_.live_view().row_count(frames_), 5);
  ASSERT_TRUE(engine_.rollback(txn).is_ok());
  EXPECT_EQ(engine_.live_view().row_count(frames_), 0);
  EXPECT_FALSE(engine_.live_view().pk_lookup(frames_, {Value::i64(2)}).is_ok());
  EXPECT_TRUE(engine_.verify_integrity().is_ok());
}

TEST_F(EngineTest, ColumnBatchForeignKeyViolationReported) {
  const Schema schema = frames_objects_schema();
  const uint64_t txn = engine_.begin_transaction();
  ASSERT_TRUE(insert(txn, frames_, frame_row(1)).is_ok());
  ColumnBatch batch(schema.table(schema.table_id("objects").value()));
  for (int64_t id : {10, 11}) {
    batch.push_i64(0, id);
    batch.push_i64(1, id == 10 ? 1 : 999);  // 999: no such frame
    batch.push_f64(2, 10.0);
    batch.push_f64(3, 5.0);
    batch.push_f64(4, 18.0);
  }
  const BatchResult result = engine_.insert_column_batch(txn, objects_, batch);
  EXPECT_EQ(result.rows_applied, 1);
  ASSERT_TRUE(result.error.has_value());
  EXPECT_EQ(result.error->row_index, 1u);
  EXPECT_EQ(result.error->status.code(), ErrorCode::kConstraintForeignKey);
}

// ------------------------------------------------- randomized differential ---

class EngineFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineFuzz, MatchesReferenceModel) {
  Rng rng(GetParam());
  Engine engine(frames_objects_schema());
  const uint32_t frames = engine.table_id("frames").value();
  const uint32_t objects = engine.table_id("objects").value();
  std::set<int64_t> ref_frames;
  std::map<int64_t, int64_t> ref_objects;  // id -> frame

  const uint64_t txn = engine.begin_transaction();
  OpCosts costs;
  for (int op = 0; op < 2000; ++op) {
    if (rng.bernoulli(0.3)) {
      const int64_t id = rng.uniform_int(0, 60);
      const Status status = engine.insert_row(txn, frames, frame_row(id),
                                              costs);
      if (ref_frames.count(id) > 0) {
        EXPECT_EQ(status.code(), ErrorCode::kConstraintPrimaryKey);
      } else {
        EXPECT_TRUE(status.is_ok());
        ref_frames.insert(id);
      }
    } else {
      const int64_t id = rng.uniform_int(0, 1500);
      const int64_t frame = rng.uniform_int(0, 80);  // often dangling
      const Status status =
          engine.insert_row(txn, objects, object_row(id, frame), costs);
      if (ref_objects.count(id) > 0) {
        // PK is checked before FK in our engine.
        EXPECT_EQ(status.code(), ErrorCode::kConstraintPrimaryKey);
      } else if (ref_frames.count(frame) == 0) {
        EXPECT_EQ(status.code(), ErrorCode::kConstraintForeignKey);
      } else {
        EXPECT_TRUE(status.is_ok()) << status.to_string();
        ref_objects[id] = frame;
      }
    }
  }
  EXPECT_EQ(engine.live_view().row_count(frames),
            static_cast<int64_t>(ref_frames.size()));
  EXPECT_EQ(engine.live_view().row_count(objects),
            static_cast<int64_t>(ref_objects.size()));
  EXPECT_TRUE(engine.verify_integrity().is_ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzz,
                         ::testing::Values(101, 102, 103, 104, 105));

}  // namespace
}  // namespace sky::db
