// Parallel coordinator tests: dynamic vs static assignment, real-thread and
// simulated backends, determinism of simulation, and end-to-end integrity
// of a full parallel night.
#include <gtest/gtest.h>

#include "catalog/generator.h"
#include "catalog/pq_schema.h"
#include "client/sim_session.h"
#include "core/coordinator.h"
#include "core/tuning.h"
#include "db/engine.h"

namespace sky::core {
namespace {

std::vector<CatalogFile> make_files(int count, int64_t bytes_each,
                                    uint64_t seed, double error_rate = 0.0) {
  std::vector<CatalogFile> files;
  for (int f = 0; f < count; ++f) {
    catalog::FileSpec spec;
    spec.name = "file" + std::to_string(f) + ".cat";
    spec.seed = seed + static_cast<uint64_t>(f);
    spec.unit_id = 100 + f;
    spec.target_bytes = bytes_each;
    spec.error_rate = error_rate;
    files.push_back(
        CatalogFile{spec.name, catalog::CatalogGenerator::generate(spec).text});
  }
  return files;
}

void load_reference(db::Engine& engine, const db::Schema& schema) {
  client::DirectSession session(engine);
  BulkLoaderOptions options;
  options.write_audit_row = false;
  BulkLoader loader(session, schema, options);
  ASSERT_TRUE(
      loader
          .load_text("reference",
                     catalog::CatalogGenerator::reference_file().text)
          .is_ok());
}

TEST(CoordinatorThreadsTest, ParallelNightLoadsEverything) {
  const db::Schema schema = catalog::make_pq_schema();
  db::Engine engine(schema);
  load_reference(engine, schema);
  const auto files = make_files(8, 24 * 1024, 71);

  CoordinatorOptions options;
  options.parallel_degree = 4;
  options.loader.write_audit_row = true;
  const auto report = LoadCoordinator::run_threads(
      files, schema,
      [&](int) { return std::make_unique<client::DirectSession>(engine); },
      options);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report->files.size(), 8u);
  EXPECT_EQ(report->workers, 4);
  int64_t skipped = 0;
  for (const FileLoadReport& file : report->files) {
    skipped += file.total_skipped();
  }
  EXPECT_EQ(skipped, 0);
  EXPECT_GT(report->total_rows_loaded, 0);
  // One audit row per file.
  EXPECT_EQ(engine.live_view().row_count(engine.table_id("load_audit").value()), 8);
  EXPECT_TRUE(engine.verify_integrity().is_ok());
  // Dynamic assignment: all files distributed; with real threads on a
  // loaded host some workers may drain the queue before others start, so
  // only require that no worker was overloaded past the queue total.
  int total_files = 0;
  for (const int files_done : report->files_per_worker) {
    EXPECT_GE(files_done, 0);
    total_files += files_done;
  }
  EXPECT_EQ(total_files, 8);
}

TEST(CoordinatorThreadsTest, DegreeOneIsSerial) {
  const db::Schema schema = catalog::make_pq_schema();
  db::Engine engine(schema);
  load_reference(engine, schema);
  const auto files = make_files(3, 16 * 1024, 73);
  CoordinatorOptions options;
  options.parallel_degree = 1;
  options.loader.write_audit_row = false;
  const auto report = LoadCoordinator::run_threads(
      files, schema,
      [&](int) { return std::make_unique<client::DirectSession>(engine); },
      options);
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report->files_per_worker, (std::vector<int>{3}));
  EXPECT_TRUE(engine.verify_integrity().is_ok());
}

TEST(CoordinatorThreadsTest, RejectsBadDegree) {
  const db::Schema schema = catalog::make_pq_schema();
  CoordinatorOptions options;
  options.parallel_degree = 0;
  const auto report = LoadCoordinator::run_threads(
      {}, schema, [](int) -> std::unique_ptr<client::Session> {
        return nullptr;
      },
      options);
  EXPECT_FALSE(report.is_ok());
}

TEST(CoordinatorSimTest, SimNightDeterministicAndComplete) {
  const db::Schema schema = catalog::make_pq_schema();
  const auto files = make_files(6, 24 * 1024, 79);

  auto run_once = [&]() {
    db::Engine engine(schema);
    load_reference(engine, schema);
    sim::Environment env;
    client::SimServer server(env, engine, client::ServerConfig{});
    CoordinatorOptions options;
    options.parallel_degree = 3;
    options.loader.write_audit_row = false;
    const auto report =
        LoadCoordinator::run_sim(env, server, files, schema, options);
    EXPECT_TRUE(report.is_ok());
    EXPECT_TRUE(engine.verify_integrity().is_ok());
    return std::make_pair(report->makespan, report->total_rows_loaded);
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first, second);
  EXPECT_GT(first.first, 0);
  EXPECT_GT(first.second, 0);
}

TEST(CoordinatorSimTest, MoreWorkersFasterUpToSaturation) {
  const db::Schema schema = catalog::make_pq_schema();
  const auto files = make_files(8, 24 * 1024, 83);
  auto makespan_with = [&](int degree) {
    db::Engine engine(schema);
    load_reference(engine, schema);
    sim::Environment env;
    client::SimServer server(env, engine, client::ServerConfig{});
    CoordinatorOptions options;
    options.parallel_degree = degree;
    options.loader.write_audit_row = false;
    const auto report =
        LoadCoordinator::run_sim(env, server, files, schema, options);
    EXPECT_TRUE(report.is_ok());
    return report->makespan;
  };
  const Nanos serial = makespan_with(1);
  const Nanos quad = makespan_with(4);
  EXPECT_LT(quad, serial);
  // Speedup is sublinear but substantial.
  EXPECT_GT(quad, serial / 6);
  EXPECT_LT(quad, serial * 2 / 5);
}

TEST(CoordinatorSimTest, DynamicBeatsStaticOnSkewedFiles) {
  // Very skewed file sizes: dynamic assignment balances, static round-robin
  // strands one worker with the big files.
  const db::Schema schema = catalog::make_pq_schema();
  std::vector<CatalogFile> files;
  for (int f = 0; f < 8; ++f) {
    catalog::FileSpec spec;
    spec.name = "skew" + std::to_string(f);
    spec.seed = 89 + static_cast<uint64_t>(f);
    spec.unit_id = 200 + f;
    // Files 0 and 4 are 8x the size of the rest; round-robin with 4 workers
    // gives BOTH big files to worker 0.
    spec.target_bytes = (f % 4 == 0) ? 96 * 1024 : 12 * 1024;
    files.push_back(CatalogFile{
        spec.name, catalog::CatalogGenerator::generate(spec).text});
  }
  auto makespan_with = [&](bool dynamic) {
    db::Engine engine(schema);
    load_reference(engine, schema);
    sim::Environment env;
    client::SimServer server(env, engine, client::ServerConfig{});
    CoordinatorOptions options;
    options.parallel_degree = 4;
    options.dynamic_assignment = dynamic;
    options.loader.write_audit_row = false;
    const auto report =
        LoadCoordinator::run_sim(env, server, files, schema, options);
    EXPECT_TRUE(report.is_ok());
    return report->makespan;
  };
  EXPECT_LT(makespan_with(true), makespan_with(false));
}

TEST(CoordinatorSimTest, ErrorHeavyFileAbsorbedByDynamicAssignment) {
  const db::Schema schema = catalog::make_pq_schema();
  std::vector<CatalogFile> files = make_files(5, 20 * 1024, 97);
  {
    catalog::FileSpec bad;
    bad.name = "toxic.cat";
    bad.seed = 999;
    bad.unit_id = 300;
    bad.target_bytes = 20 * 1024;
    bad.error_rate = 0.5;  // slow, error-laden file
    files.push_back(CatalogFile{
        bad.name, catalog::CatalogGenerator::generate(bad).text});
  }
  db::Engine engine(schema);
  load_reference(engine, schema);
  sim::Environment env;
  client::SimServer server(env, engine, client::ServerConfig{});
  CoordinatorOptions options;
  options.parallel_degree = 3;
  options.loader.write_audit_row = false;
  const auto report =
      LoadCoordinator::run_sim(env, server, files, schema, options);
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report->files.size(), 6u);
  EXPECT_TRUE(engine.verify_integrity().is_ok());
  int64_t skipped = 0;
  for (const FileLoadReport& file : report->files) {
    skipped += file.total_skipped();
  }
  EXPECT_GT(skipped, 0);
}

TEST(CoordinatorThreadsTest, RerunSkipsAlreadyLoadedFiles) {
  // A restarted loading job must not duplicate work: the audit checker
  // recognizes files recorded in load_audit and skips them.
  const db::Schema schema = catalog::make_pq_schema();
  db::Engine engine(schema);
  load_reference(engine, schema);
  const auto files = make_files(6, 16 * 1024, 271);
  CoordinatorOptions options;
  options.parallel_degree = 2;
  options.loader.write_audit_row = true;
  options.already_loaded = make_audit_checker(engine);
  const auto session_factory = [&](int) {
    return std::make_unique<client::DirectSession>(engine);
  };

  const auto first =
      LoadCoordinator::run_threads(files, schema, session_factory, options);
  ASSERT_TRUE(first.is_ok());
  EXPECT_EQ(first->files.size(), 6u);
  EXPECT_EQ(first->files_skipped, 0);
  const int64_t rows_after_first = engine.total_rows();

  // Full re-run: everything skips, nothing changes.
  const auto second =
      LoadCoordinator::run_threads(files, schema, session_factory, options);
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(second->files_skipped, 6);
  EXPECT_TRUE(second->files.empty());
  EXPECT_EQ(engine.total_rows(), rows_after_first);

  // Partial crash simulation: two new files join; only they load.
  auto extended = files;
  for (const auto& file : make_files(2, 16 * 1024, 999)) {
    extended.push_back(CatalogFile{"new_" + file.name, file.text});
  }
  const auto third = LoadCoordinator::run_threads(extended, schema,
                                                  session_factory, options);
  ASSERT_TRUE(third.is_ok());
  EXPECT_EQ(third->files_skipped, 6);
  EXPECT_EQ(third->files.size(), 2u);
  EXPECT_TRUE(engine.verify_integrity().is_ok());
}

TEST(CoordinatorTest, AuditCheckerWithoutAuditTable) {
  db::Schema schema;
  db::TableDef t;
  t.name = "only";
  t.col("id", db::ColumnType::kInt64, false);
  t.primary_key = {"id"};
  ASSERT_TRUE(schema.add_table(t).is_ok());
  db::Engine engine(schema);
  const auto checker = make_audit_checker(engine);
  EXPECT_FALSE(checker("anything.cat"));  // degrades to "never loaded"
}

// --------------------------------------------------------------- tuning ---

TEST(TuningTest, ProfilesDiffer) {
  const TuningProfile production = TuningProfile::production();
  const TuningProfile untuned = TuningProfile::untuned_2004();
  EXPECT_TRUE(production.bulk);
  EXPECT_FALSE(untuned.bulk);
  EXPECT_GT(production.parallel_degree, untuned.parallel_degree);
  EXPECT_LT(production.server_cache_pages, untuned.server_cache_pages);
  EXPECT_EQ(production.device_layout.physical_devices, 3);
  EXPECT_EQ(untuned.device_layout.physical_devices, 1);
  EXPECT_FALSE(production.describe().empty());
  EXPECT_NE(production.describe(), untuned.describe());
}

TEST(TuningTest, IndexPolicyApplies) {
  const db::Schema schema = catalog::make_pq_schema();
  db::Engine engine(schema, TuningProfile::production().engine_options());
  ASSERT_TRUE(TuningProfile::production().apply_index_policy(engine).is_ok());
  const uint32_t objects = engine.table_id("objects").value();
  // htmid index queryable; composite index disabled.
  EXPECT_TRUE(engine.live_view()
                  .index_range(objects, catalog::kIndexHtmid,
                               {db::Value::i64(0)},
                               {db::Value::i64(INT64_MAX)})
                  .is_ok());
  EXPECT_EQ(engine.live_view()
                .index_range(objects, catalog::kIndexRaDecMag,
                             {db::Value::f64(0)}, {db::Value::f64(360)})
                .status()
                .code(),
            ErrorCode::kFailedPrecondition);
}

}  // namespace
}  // namespace sky::core
