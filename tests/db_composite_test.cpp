// Composite primary keys, multi-column FKs, and interleaved
// commit/rollback fuzzing — the schema shapes the 23-table model doesn't
// exercise (its PKs are single-column) plus transaction lifecycles under
// churn.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "db/engine.h"

namespace sky::db {
namespace {

// A (night, ccd) composite-keyed parent with a 2-column FK from the child.
Schema composite_schema() {
  Schema schema;
  TableDef scans;
  scans.name = "scans";
  scans.col("night", ColumnType::kInt64, false);
  scans.col("ccd", ColumnType::kInt32, false);
  scans.col("quality", ColumnType::kDouble);
  scans.primary_key = {"night", "ccd"};
  EXPECT_TRUE(schema.add_table(scans).is_ok());

  TableDef readings;
  readings.name = "readings";
  readings.col("reading_id", ColumnType::kInt64, false);
  readings.col("night", ColumnType::kInt64, false);
  readings.col("ccd", ColumnType::kInt32, false);
  readings.col("value", ColumnType::kDouble);
  readings.primary_key = {"reading_id"};
  readings.foreign_keys.push_back(ForeignKey{{"night", "ccd"}, "scans"});
  EXPECT_TRUE(schema.add_table(readings).is_ok());
  return schema;
}

Row scan(int64_t night, int32_t ccd) {
  return {Value::i64(night), Value::i32(ccd), Value::f64(0.9)};
}
Row reading(int64_t id, int64_t night, int32_t ccd) {
  return {Value::i64(id), Value::i64(night), Value::i32(ccd),
          Value::f64(1.0)};
}

TEST(CompositeKeyTest, CompositePkUniqueness) {
  Engine engine(composite_schema());
  const uint64_t txn = engine.begin_transaction();
  OpCosts costs;
  ASSERT_TRUE(engine.insert_row(txn, 0, scan(1, 1), costs).is_ok());
  ASSERT_TRUE(engine.insert_row(txn, 0, scan(1, 2), costs).is_ok());
  ASSERT_TRUE(engine.insert_row(txn, 0, scan(2, 1), costs).is_ok());
  // Exact duplicate of the pair fails.
  EXPECT_EQ(engine.insert_row(txn, 0, scan(1, 1), costs).code(),
            ErrorCode::kConstraintPrimaryKey);
  EXPECT_EQ(engine.live_view().row_count(0), 3);
}

TEST(CompositeKeyTest, MultiColumnFkChecksWholeTuple) {
  Engine engine(composite_schema());
  const uint64_t txn = engine.begin_transaction();
  OpCosts costs;
  ASSERT_TRUE(engine.insert_row(txn, 0, scan(1, 1), costs).is_ok());
  // Matching tuple passes; partially-matching tuple fails.
  EXPECT_TRUE(engine.insert_row(txn, 1, reading(100, 1, 1), costs).is_ok());
  EXPECT_EQ(engine.insert_row(txn, 1, reading(101, 1, 2), costs).code(),
            ErrorCode::kConstraintForeignKey);
  EXPECT_EQ(engine.insert_row(txn, 1, reading(102, 2, 1), costs).code(),
            ErrorCode::kConstraintForeignKey);
}

TEST(CompositeKeyTest, CompositePkLookupAndRange) {
  Engine engine(composite_schema());
  const uint64_t txn = engine.begin_transaction();
  OpCosts costs;
  for (int64_t night = 1; night <= 3; ++night) {
    for (int32_t ccd = 0; ccd < 4; ++ccd) {
      ASSERT_TRUE(engine.insert_row(txn, 0, scan(night, ccd), costs).is_ok());
    }
  }
  const auto exact = engine.live_view().pk_lookup(0, {Value::i64(2), Value::i32(3)});
  ASSERT_TRUE(exact.is_ok());
  EXPECT_EQ((*exact)[0].as_i64(), 2);
  EXPECT_EQ((*exact)[1].as_i32(), 3);
  // All of night 2: prefix range (2,min) .. (3,min).
  const auto night2 = engine.live_view().pk_range(0, {Value::i64(2)}, {Value::i64(3)});
  ASSERT_TRUE(night2.is_ok());
  EXPECT_EQ(night2->size(), 4u);
}

TEST(CompositeKeyTest, NullInCompositeFkPasses) {
  Schema schema;
  TableDef parent;
  parent.name = "p";
  parent.col("a", ColumnType::kInt64, false);
  parent.col("b", ColumnType::kInt64, false);
  parent.primary_key = {"a", "b"};
  ASSERT_TRUE(schema.add_table(parent).is_ok());
  TableDef child;
  child.name = "c";
  child.col("id", ColumnType::kInt64, false);
  child.col("pa", ColumnType::kInt64, true);
  child.col("pb", ColumnType::kInt64, true);
  child.primary_key = {"id"};
  child.foreign_keys.push_back(ForeignKey{{"pa", "pb"}, "p"});
  ASSERT_TRUE(schema.add_table(child).is_ok());
  Engine engine(std::move(schema));
  const uint64_t txn = engine.begin_transaction();
  OpCosts costs;
  // MATCH SIMPLE: any NULL in the FK tuple passes the constraint.
  EXPECT_TRUE(engine
                  .insert_row(txn, 1,
                              {Value::i64(1), Value::null(), Value::i64(9)},
                              costs)
                  .is_ok());
  EXPECT_TRUE(engine
                  .insert_row(txn, 1,
                              {Value::i64(2), Value::null(), Value::null()},
                              costs)
                  .is_ok());
  // Fully non-NULL dangling tuple fails.
  EXPECT_EQ(engine
                .insert_row(txn, 1,
                            {Value::i64(3), Value::i64(1), Value::i64(1)},
                            costs)
                .code(),
            ErrorCode::kConstraintForeignKey);
}

// Interleaved transaction lifecycle fuzz: random begin / insert / commit /
// rollback sequences against a reference model. Committed rows persist,
// rolled-back rows vanish, and integrity holds throughout.
class TxnLifecycleFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TxnLifecycleFuzz, CommitRollbackInterleaving) {
  Rng rng(GetParam());
  Engine engine(composite_schema());
  std::set<std::pair<int64_t, int32_t>> committed_scans;

  for (int epoch = 0; epoch < 40; ++epoch) {
    const uint64_t txn = engine.begin_transaction();
    std::set<std::pair<int64_t, int32_t>> pending;
    OpCosts costs;
    const int64_t inserts = rng.uniform_int(1, 20);
    for (int64_t i = 0; i < inserts; ++i) {
      const int64_t night = rng.uniform_int(0, 30);
      const auto ccd = static_cast<int32_t>(rng.uniform_int(0, 10));
      const Status status =
          engine.insert_row(txn, 0, scan(night, ccd), costs);
      const bool exists = committed_scans.count({night, ccd}) > 0 ||
                          pending.count({night, ccd}) > 0;
      if (exists) {
        EXPECT_EQ(status.code(), ErrorCode::kConstraintPrimaryKey);
      } else {
        EXPECT_TRUE(status.is_ok());
        pending.insert({night, ccd});
      }
    }
    if (rng.bernoulli(0.5)) {
      ASSERT_TRUE(engine.commit(txn).is_ok());
      committed_scans.insert(pending.begin(), pending.end());
    } else {
      ASSERT_TRUE(engine.rollback(txn).is_ok());
    }
    ASSERT_EQ(engine.live_view().row_count(0),
              static_cast<int64_t>(committed_scans.size()));
  }
  EXPECT_TRUE(engine.verify_integrity().is_ok());
  // Every committed scan is present; no others are.
  for (const auto& [night, ccd] : committed_scans) {
    EXPECT_TRUE(
        engine.live_view().pk_lookup(0, {Value::i64(night), Value::i32(ccd)}).is_ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TxnLifecycleFuzz,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(CompositeKeyTest, RollbackRestoresCompositeFkTargets) {
  Engine engine(composite_schema());
  OpCosts costs;
  const uint64_t doomed = engine.begin_transaction();
  ASSERT_TRUE(engine.insert_row(doomed, 0, scan(5, 5), costs).is_ok());
  ASSERT_TRUE(engine.insert_row(doomed, 1, reading(1, 5, 5), costs).is_ok());
  ASSERT_TRUE(engine.rollback(doomed).is_ok());
  // After rollback the child insert fails again (parent gone).
  const uint64_t retry = engine.begin_transaction();
  EXPECT_EQ(engine.insert_row(retry, 1, reading(2, 5, 5), costs).code(),
            ErrorCode::kConstraintForeignKey);
  EXPECT_TRUE(engine.verify_integrity().is_ok());
}

}  // namespace
}  // namespace sky::db
