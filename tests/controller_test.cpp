// Controller unit battery: the closed feedback loop against a scripted
// ControlPlane (convergence under steady load, hysteresis damping, bounded
// clamping), WaitGraph cycle oracles, a real-engine deadlock-victim test,
// and an update_policies-vs-load hammer. Runs in the `sanitizer` ctest
// label (SKY_SANITIZE=address / thread).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/controller.h"
#include "db/control_plane.h"
#include "db/engine.h"
#include "db/lock_manager.h"
#include "db/op_costs.h"

namespace sky::core {
namespace {

// Scripted control plane: the test advances cumulative counters between
// ticks; apply() mirrors accepted patches back into the live-policy block
// exactly like the real planes do.
class FakePlane final : public db::ControlPlane {
 public:
  FakePlane() {
    stats_.policies.commit_window = 0;
    stats_.policies.max_group_commits = 8;
    stats_.policies.transaction_slots = 8;
    stats_.policies.itl_slots_per_table = 4;
    stats_.policies.extent_assignment = db::ExtentAssignment::kRoundRobin;
  }

  db::EngineStats stats() const override { return stats_; }

  Status apply(const db::PolicyPatch& patch) override {
    applied.push_back(patch);
    if (!apply_status.is_ok()) return apply_status;
    if (patch.commit_window) stats_.policies.commit_window = *patch.commit_window;
    if (patch.max_group_commits) {
      stats_.policies.max_group_commits = *patch.max_group_commits;
    }
    if (patch.transaction_slots) {
      stats_.policies.transaction_slots = *patch.transaction_slots;
    }
    if (patch.itl_slots_per_table) {
      stats_.policies.itl_slots_per_table = *patch.itl_slots_per_table;
    }
    if (patch.extent_assignment) {
      stats_.policies.extent_assignment = *patch.extent_assignment;
    }
    return Status::ok();
  }

  db::EngineStats stats_;
  Status apply_status = Status::ok();
  std::vector<db::PolicyPatch> applied;
};

constexpr Nanos kTick = 100 * kMillisecond;

// Drive one tick at t = n * kTick with the given per-interval commit count
// and commit concurrency.
db::PolicyPatch tick_commits(Controller& controller, FakePlane& plane, int n,
                             int64_t commits, int64_t in_use) {
  plane.stats_.wal.commit_requests += commits;
  plane.stats_.concurrency.transaction_gate.in_use = in_use;
  return controller.tick(static_cast<Nanos>(n) * kTick);
}

TEST(ControllerTest, FirstTickOnlyEstablishesBaseline) {
  FakePlane plane;
  plane.stats_.wal.commit_requests = 100000;  // outrageous history
  Controller controller(plane);
  EXPECT_TRUE(controller.tick(0).empty());
  EXPECT_EQ(controller.trace().total(), 0u);
  EXPECT_TRUE(plane.applied.empty());
}

// Saturated ungrouped commits (many committers in flight, low observed
// rate): the window must walk up one step per tick and settle at max —
// the bootstrap out of log-device saturation.
TEST(ControllerTest, WindowConvergesUpUnderConcurrentCommits) {
  FakePlane plane;
  Controller controller(plane);
  controller.tick(0);
  Nanos prev = 0;
  for (int n = 1; n <= 20; ++n) {
    tick_commits(controller, plane, n, /*commits=*/12, /*in_use=*/6);
    const Nanos window = plane.stats_.policies.commit_window.value();
    EXPECT_GE(window, prev) << "window must approach monotonically";
    EXPECT_LE(window - prev, controller.policy().window_step);
    prev = window;
  }
  // Settles within one deadband of the clamped target (the last 1ms step
  // to 8ms is inside the 15% relative deadband at 7ms — the intended hold).
  EXPECT_GE(prev, controller.policy().max_commit_window -
                      controller.policy().window_step);
  // 0 -> 7ms at 1ms/tick: exactly 7 patches, then the deadband holds.
  EXPECT_EQ(plane.applied.size(), 7u);
  EXPECT_EQ(controller.trace().total(), 7u);
}

// Same commit rate but almost nobody concurrently committing: the window is
// pure leader latency and must walk back to min.
TEST(ControllerTest, WindowConvergesDownWhenConcurrencyLow) {
  FakePlane plane;
  plane.stats_.policies.commit_window = 8 * kMillisecond;
  Controller controller(plane);
  controller.tick(0);
  for (int n = 1; n <= 20; ++n) {
    tick_commits(controller, plane, n, /*commits=*/12, /*in_use=*/1);
  }
  EXPECT_EQ(plane.stats_.policies.commit_window.value(),
            controller.policy().min_commit_window);
  EXPECT_EQ(plane.applied.size(), 8u);
}

// A target within the deadband of the current window must not move it.
TEST(ControllerTest, WindowHoldsInsideDeadband) {
  FakePlane plane;
  plane.stats_.policies.commit_window = 8 * kMillisecond;
  Controller controller(plane);
  controller.tick(0);
  for (int n = 1; n <= 10; ++n) {
    // 12 commits / 100ms with 6 in flight wants the clamped max (8ms):
    // diff 0, inside the deadband.
    tick_commits(controller, plane, n, /*commits=*/12, /*in_use=*/6);
  }
  EXPECT_TRUE(plane.applied.empty());
  EXPECT_EQ(plane.stats_.policies.commit_window.value(), 8 * kMillisecond);
}

// Alternating pressure (one queued interval, one neutral interval) must
// never accumulate confirm_ticks agreeing votes: no slot patch, ever.
TEST(ControllerTest, NoSlotOscillationUnderAlternatingPressure) {
  FakePlane plane;
  Controller controller(plane);
  controller.tick(0);
  for (int n = 1; n <= 40; ++n) {
    auto& gate = plane.stats_.concurrency.transaction_gate;
    gate.acquires += 10;
    if (n % 2 == 1) {
      gate.waits += 6;  // wait share 0.6: vote grow
      gate.in_use = 8;
    } else {
      gate.in_use = 5;  // quiet but busy enough not to vote shrink
    }
    controller.tick(static_cast<Nanos>(n) * kTick);
  }
  EXPECT_TRUE(plane.applied.empty());
  EXPECT_EQ(plane.stats_.policies.transaction_slots.value(), 8);
}

// Sustained queueing grows the gate by slot_step per confirm_ticks window,
// clamped at the policy maximum.
TEST(ControllerTest, TransactionSlotsGrowConfirmedAndClamped) {
  FakePlane plane;
  ControllerPolicy policy;
  policy.max_transaction_slots = 10;
  Controller controller(plane, policy);
  controller.tick(0);
  for (int n = 1; n <= 30; ++n) {
    auto& gate = plane.stats_.concurrency.transaction_gate;
    gate.acquires += 10;
    gate.waits += 6;
    gate.in_use = plane.stats_.policies.transaction_slots.value();
    controller.tick(static_cast<Nanos>(n) * kTick);
    EXPECT_LE(plane.stats_.policies.transaction_slots.value(), 10);
  }
  EXPECT_EQ(plane.stats_.policies.transaction_slots.value(), 10);
  // 8 -> 9 -> 10: exactly two confirmed moves despite 30 queued intervals.
  EXPECT_EQ(plane.applied.size(), 2u);
}

// A quiet, mostly idle gate shrinks down to the policy minimum and no
// further.
TEST(ControllerTest, TransactionSlotsShrinkWhenIdleAndClamped) {
  FakePlane plane;
  ControllerPolicy policy;
  policy.min_transaction_slots = 6;
  Controller controller(plane, policy);
  controller.tick(0);
  for (int n = 1; n <= 30; ++n) {
    auto& gate = plane.stats_.concurrency.transaction_gate;
    gate.acquires += 10;
    gate.in_use = 1;  // 2*1 < slots: idle vote
    controller.tick(static_cast<Nanos>(n) * kTick);
    EXPECT_GE(plane.stats_.policies.transaction_slots.value(), 6);
  }
  EXPECT_EQ(plane.stats_.policies.transaction_slots.value(), 6);
  EXPECT_EQ(plane.applied.size(), 2u);  // 8 -> 7 -> 6
}

// Stall share past the knee shrinks the ITL; clamped at min_itl_slots.
TEST(ControllerTest, ItlShrinksOnStallShare) {
  FakePlane plane;
  ControllerPolicy policy;
  policy.min_itl_slots = 3;
  Controller controller(plane, policy);
  controller.tick(0);
  for (int n = 1; n <= 10; ++n) {
    auto& itl = plane.stats_.concurrency.itl;
    itl.acquires += 100;
    itl.stalls += 5;  // stall share 0.05 > 0.02
    controller.tick(static_cast<Nanos>(n) * kTick);
    EXPECT_GE(plane.stats_.policies.itl_slots_per_table.value(), 3);
  }
  EXPECT_EQ(plane.stats_.policies.itl_slots_per_table.value(), 3);  // 4 -> 3
  EXPECT_EQ(plane.applied.size(), 1u);
}

// An engine running without ITL gates (live value 0) must never receive an
// ITL patch no matter the pressure.
TEST(ControllerTest, ItlDisabledNeverPatched) {
  FakePlane plane;
  plane.stats_.policies.itl_slots_per_table = 0;
  Controller controller(plane);
  controller.tick(0);
  for (int n = 1; n <= 10; ++n) {
    auto& itl = plane.stats_.concurrency.itl;
    itl.acquires += 100;
    itl.waits += 90;
    itl.stalls += 50;
    controller.tick(static_cast<Nanos>(n) * kTick);
  }
  EXPECT_TRUE(plane.applied.empty());
}

TEST(ControllerTest, ExtentAssignmentHysteresisBand) {
  FakePlane plane;
  const auto set_extents = [&plane](int64_t a, int64_t b) {
    plane.stats_.extents.clear();
    db::TableExtentStats table;
    table.table_id = 0;
    table.extents.push_back({0, 0, a});
    table.extents.push_back({0, 0, b});
    plane.stats_.extents.push_back(table);
  };
  Controller controller(plane);
  set_extents(100, 100);
  controller.tick(0);

  // Skew 1.6 > 1.5: flip to least-loaded.
  set_extents(400, 100);
  db::PolicyPatch patch = controller.tick(kTick);
  ASSERT_TRUE(patch.extent_assignment.has_value());
  EXPECT_EQ(*patch.extent_assignment, db::ExtentAssignment::kLeastLoaded);

  // Skew 1.3: inside the band, hold (no flap back).
  set_extents(260, 140);
  EXPECT_TRUE(controller.tick(2 * kTick).empty());

  // Skew 1.05 < 1.1: rebalanced, back to round-robin.
  set_extents(210, 190);
  patch = controller.tick(3 * kTick);
  ASSERT_TRUE(patch.extent_assignment.has_value());
  EXPECT_EQ(*patch.extent_assignment, db::ExtentAssignment::kRoundRobin);
}

// A rejected apply is traced as not-applied and the tick returns empty.
TEST(ControllerTest, RejectedApplyTracedNotApplied) {
  FakePlane plane;
  plane.apply_status = Status(ErrorCode::kFailedPrecondition, "plane down");
  db::TableExtentStats table;
  table.extents.push_back({0, 0, 100});
  table.extents.push_back({0, 0, 100});
  plane.stats_.extents.push_back(table);
  Controller controller(plane);
  controller.tick(0);
  plane.stats_.extents[0].extents[0].bytes = 900;
  EXPECT_TRUE(controller.tick(kTick).empty());
  const auto decisions = controller.trace().snapshot();
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_FALSE(decisions[0].applied);
  EXPECT_NE(decisions[0].render().find("[REJECTED]"), std::string::npos);
}

TEST(ControllerTest, TraceRingIsBounded) {
  ControlTrace trace(4);
  for (int i = 0; i < 10; ++i) {
    ControlDecision decision;
    decision.tick = static_cast<uint64_t>(i);
    trace.record(decision);
  }
  EXPECT_EQ(trace.total(), 10u);
  const auto snapshot = trace.snapshot();
  ASSERT_EQ(snapshot.size(), 4u);
  EXPECT_EQ(snapshot.front().tick, 6u);  // oldest retained
  EXPECT_EQ(snapshot.back().tick, 9u);
}

// ---------------------------------------------------------------- WaitGraph

TEST(WaitGraphTest, RefusesOnlyTheCycleClosingWait) {
  db::WaitGraph graph;
  int gate_a = 0, gate_b = 0;
  graph.add_hold(1, &gate_a);
  graph.add_hold(2, &gate_b);
  // 1 waits on b: holder 2 waits on nothing — no cycle.
  EXPECT_FALSE(graph.add_wait(1, &gate_b));
  EXPECT_EQ(graph.waiting_count(), 1u);
  // 2 waits on a: holder 1 waits on b held by 2 — cycle, refused and not
  // registered.
  EXPECT_TRUE(graph.add_wait(2, &gate_a));
  EXPECT_EQ(graph.waiting_count(), 1u);
  // 2 releases b; 1's wait is granted and becomes a hold.
  graph.remove_hold(2, &gate_b);
  graph.grant(1, &gate_b);
  EXPECT_EQ(graph.waiting_count(), 0u);
  // Now 2 can wait on a without closing anything.
  EXPECT_FALSE(graph.add_wait(2, &gate_a));
}

TEST(WaitGraphTest, ThreePartyCycleDetected) {
  db::WaitGraph graph;
  int gate_a = 0, gate_b = 0, gate_c = 0;
  graph.add_hold(1, &gate_a);
  graph.add_hold(2, &gate_b);
  graph.add_hold(3, &gate_c);
  EXPECT_FALSE(graph.add_wait(1, &gate_b));
  EXPECT_FALSE(graph.add_wait(2, &gate_c));
  EXPECT_TRUE(graph.add_wait(3, &gate_a));  // closes 1 -> 2 -> 3 -> 1
}

TEST(WaitGraphTest, MultisetHoldsSurviveSingleRelease) {
  db::WaitGraph graph;
  int gate_a = 0;
  graph.add_hold(1, &gate_a);
  graph.add_hold(1, &gate_a);
  graph.remove_hold(1, &gate_a);
  // 1 still holds a; 2 waiting on a while 1 waits on nothing is fine, but
  // 1 waiting on anything 2-held would still see 1 as a holder of a.
  int gate_b = 0;
  graph.add_hold(2, &gate_b);
  EXPECT_FALSE(graph.add_wait(2, &gate_a));
  EXPECT_TRUE(graph.add_wait(1, &gate_b));
}

// ------------------------------------------------- real-engine deadlock oracle

db::Schema two_table_schema() {
  db::Schema schema;
  for (const char* name : {"a", "b"}) {
    db::TableDef def;
    def.name = name;
    def.col("id", db::ColumnType::kInt64, false);
    def.primary_key = {"id"};
    EXPECT_TRUE(schema.add_table(def).is_ok());
  }
  return schema;
}

// Two transactions writing {a then b} and {b then a} on single-slot ITL
// gates: exactly one is refused with kDeadlockDetected, rolls back, and the
// survivor completes both writes.
TEST(DeadlockDetectorTest, CycleVictimAbortsAndSurvivorCommits) {
  const db::Schema schema = two_table_schema();
  db::EngineOptions options;
  options.concurrency.itl_slots_per_table = 1;
  options.concurrency.stall_probability = 0;
  db::Engine engine(schema, options);
  const uint32_t table_a = engine.table_id("a").value();
  const uint32_t table_b = engine.table_id("b").value();

  std::atomic<int> first_writes{0};
  std::atomic<int> deadlocks{0};
  std::atomic<int> commits{0};
  const auto worker = [&](uint32_t first, uint32_t second, int64_t key) {
    db::OpCosts costs;
    const uint64_t txn = engine.begin_transaction(&costs);
    ASSERT_TRUE(engine
                    .insert_row(txn, first, {db::Value::i64(key)}, costs)
                    .is_ok());
    first_writes.fetch_add(1);
    while (first_writes.load() < 2) std::this_thread::yield();
    const Status status =
        engine.insert_row(txn, second, {db::Value::i64(key)}, costs);
    if (status.is_ok()) {
      ASSERT_TRUE(engine.commit(txn).is_ok());
      commits.fetch_add(1);
    } else {
      ASSERT_EQ(status.code(), ErrorCode::kDeadlockDetected)
          << status.to_string();
      deadlocks.fetch_add(1);
      ASSERT_TRUE(engine.rollback(txn).is_ok());
    }
  };
  std::thread t1(worker, table_a, table_b, 1);
  std::thread t2(worker, table_b, table_a, 2);
  t1.join();
  t2.join();

  EXPECT_EQ(deadlocks.load(), 1);
  EXPECT_EQ(commits.load(), 1);
  // The survivor's two rows are the only ones left.
  EXPECT_EQ(engine.total_rows(), 2);
  EXPECT_TRUE(engine.verify_integrity().is_ok());
}

// The no-cycle oracle: the same contention with a consistent acquisition
// order (both transactions write a before b) must never trip the detector.
TEST(DeadlockDetectorTest, OrderedWritesNeverRefused) {
  const db::Schema schema = two_table_schema();
  db::EngineOptions options;
  options.concurrency.itl_slots_per_table = 1;
  options.concurrency.stall_probability = 0;
  db::Engine engine(schema, options);
  const uint32_t table_a = engine.table_id("a").value();
  const uint32_t table_b = engine.table_id("b").value();

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < 20; ++i) {
        db::OpCosts costs;
        const uint64_t txn = engine.begin_transaction(&costs);
        const int64_t key = w * 1000 + i;
        for (const uint32_t table : {table_a, table_b}) {
          if (!engine.insert_row(txn, table, {db::Value::i64(key)}, costs)
                   .is_ok()) {
            failures.fetch_add(1);
          }
        }
        if (!engine.commit(txn).is_ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(engine.total_rows(), 2 * 4 * 20);
  EXPECT_TRUE(engine.verify_integrity().is_ok());
}

// ---------------------------------------------- policies-vs-load hammer (TSan)

// Ordered writers under a live Controller plus a poller spamming stats()
// and update_policies(): the control plane must be race-free against the
// insert path. Run under SKY_SANITIZE=thread in CI.
TEST(ControlPlaneConcurrencyTest, UpdatePoliciesVsLoadHammer) {
  const db::Schema schema = two_table_schema();
  db::EngineOptions options;
  options.concurrency.itl_slots_per_table = 4;
  options.concurrency.stall_probability = 0;  // no 12s stall draws in a test
  options.commit_window = kMillisecond / 4;
  db::Engine engine(schema, options);
  const uint32_t table_a = engine.table_id("a").value();
  const uint32_t table_b = engine.table_id("b").value();

  db::EngineControlPlane plane(engine);
  ControllerPolicy policy;
  policy.tick_interval = kMillisecond;
  Controller controller(plane, policy);
  controller.start();

  std::atomic<bool> stop{false};
  std::thread poller([&] {
    db::PolicyPatch flip;
    int n = 0;
    while (!stop.load()) {
      flip.commit_window = (n % 2) * kMillisecond;
      flip.transaction_slots = 8 + (n % 3);
      flip.itl_slots_per_table = 3 + (n % 2);
      flip.extent_assignment = (n % 2) ? db::ExtentAssignment::kLeastLoaded
                                       : db::ExtentAssignment::kRoundRobin;
      ASSERT_TRUE(engine.update_policies(flip).is_ok());
      (void)engine.stats();
      ++n;
      std::this_thread::yield();
    }
  });

  std::atomic<int> failures{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < 200; ++i) {
        db::OpCosts costs;
        const uint64_t txn = engine.begin_transaction(&costs);
        const int64_t key = w * 100000 + i;
        for (const uint32_t table : {table_a, table_b}) {
          if (!engine.insert_row(txn, table, {db::Value::i64(key)}, costs)
                   .is_ok()) {
            failures.fetch_add(1);
          }
        }
        if (!engine.commit(txn).is_ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  stop.store(true);
  poller.join();
  controller.stop();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(engine.total_rows(), 2 * 4 * 200);
  EXPECT_TRUE(engine.verify_integrity().is_ok());
  // The unified snapshot reflects the final live values, not the
  // construction-time options.
  const db::EngineStats stats = engine.stats();
  EXPECT_TRUE(stats.policies.transaction_slots.has_value());
  EXPECT_TRUE(stats.policies.commit_window.has_value());
}

}  // namespace
}  // namespace sky::core
