// Unit and property tests for the common runtime: Status/Result, strings,
// RNG determinism, config files, CSV codec, units formatting.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "common/config.h"
#include "common/csv.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/units.h"

namespace sky {
namespace {

// ---------------------------------------------------------------- Status ---

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.is_ok());
  EXPECT_EQ(status.code(), ErrorCode::kOk);
  EXPECT_EQ(status.to_string(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status(ErrorCode::kConstraintPrimaryKey, "dup key 42");
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), ErrorCode::kConstraintPrimaryKey);
  EXPECT_EQ(status.to_string(), "PRIMARY_KEY_VIOLATION: dup key 42");
}

TEST(StatusTest, ConstraintErrorClassification) {
  EXPECT_TRUE(is_constraint_error(ErrorCode::kAlreadyExists));
  EXPECT_TRUE(is_constraint_error(ErrorCode::kConstraintForeignKey));
  EXPECT_TRUE(is_constraint_error(ErrorCode::kConstraintCheck));
  EXPECT_TRUE(is_constraint_error(ErrorCode::kConstraintNotNull));
  EXPECT_FALSE(is_constraint_error(ErrorCode::kOk));
  EXPECT_FALSE(is_constraint_error(ErrorCode::kIoError));
  EXPECT_FALSE(is_constraint_error(ErrorCode::kResourceExhausted));
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    EXPECT_NE(error_code_name(static_cast<ErrorCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(7);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(*result, 7);
  EXPECT_TRUE(result.status().is_ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status(ErrorCode::kNotFound, "missing"));
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(5));
  ASSERT_TRUE(result.is_ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 5);
}

Status fail_if_negative(int x) {
  if (x < 0) return Status(ErrorCode::kInvalidArgument, "negative");
  return ok_status();
}

Result<int> doubled_if_positive(int x) {
  SKY_RETURN_IF_ERROR(fail_if_negative(x));
  return x * 2;
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_EQ(doubled_if_positive(4).value(), 8);
  EXPECT_EQ(doubled_if_positive(-1).status().code(),
            ErrorCode::kInvalidArgument);
}

// --------------------------------------------------------------- strings ---

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto fields = split("a||b|", '|');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "");
}

TEST(StringsTest, SplitSingleField) {
  const auto fields = split("alone", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "alone");
}

TEST(StringsTest, SplitViewMatchesSplit) {
  const char* cases[] = {"a||b|", "alone",      "",     "|",   "||",
                         "x|y|z", "trailing|",  "|lead", "a|b", "\n|\n"};
  for (const char* text : cases) {
    const auto fields = split(text, '|');
    std::vector<std::string_view> viewed;
    for (std::string_view piece : split_view(text, '|')) {
      viewed.push_back(piece);
    }
    ASSERT_EQ(viewed.size(), fields.size()) << "input: " << text;
    for (size_t i = 0; i < fields.size(); ++i) {
      EXPECT_EQ(viewed[i], fields[i]) << "input: " << text;
    }
  }
}

TEST(StringsTest, SplitViewIsZeroCopy) {
  const std::string_view text = "ra|dec|mag";
  for (std::string_view piece : split_view(text, '|')) {
    // Pieces alias the input buffer — no allocation, no copies.
    EXPECT_GE(piece.data(), text.data());
    EXPECT_LE(piece.data() + piece.size(), text.data() + text.size());
  }
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("\t\n"), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(StringsTest, ParseInt64) {
  EXPECT_EQ(parse_int64("42").value(), 42);
  EXPECT_EQ(parse_int64(" -17 ").value(), -17);
  EXPECT_FALSE(parse_int64("").is_ok());
  EXPECT_FALSE(parse_int64("12x").is_ok());
  EXPECT_FALSE(parse_int64("99999999999999999999999").is_ok());
  EXPECT_EQ(parse_int64("9223372036854775807").value(),
            std::numeric_limits<int64_t>::max());
}

TEST(StringsTest, ParseInt32RangeChecked) {
  EXPECT_EQ(parse_int32("2147483647").value(), 2147483647);
  EXPECT_FALSE(parse_int32("2147483648").is_ok());
  EXPECT_FALSE(parse_int32("-2147483649").is_ok());
}

TEST(StringsTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(parse_double("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(parse_double("-1e3").value(), -1000.0);
  EXPECT_FALSE(parse_double("").is_ok());
  EXPECT_FALSE(parse_double("nanx").is_ok());
}

TEST(StringsTest, JoinAndFormat) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(str_format("%d-%s", 5, "x"), "5-x");
}

TEST(StringsTest, StartsWithAndLower) {
  EXPECT_TRUE(starts_with("OBJ|123", "OBJ"));
  EXPECT_FALSE(starts_with("OB", "OBJ"));
  EXPECT_EQ(to_lower("AbC"), "abc");
}

// ------------------------------------------------------------------- RNG ---

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformIntWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NormalRoughMoments) {
  Rng rng(13);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.3);
}

TEST(RngTest, ForkedStreamsAreIndependentAndDeterministic) {
  Rng parent1(42), parent2(42);
  Rng child1 = parent1.fork(3);
  Rng child2 = parent2.fork(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child1.next_u64(), child2.next_u64());
  // Different salt gives a different stream.
  Rng parent3(42);
  Rng other = parent3.fork(4);
  int same = 0;
  Rng parent4(42);
  Rng base = parent4.fork(3);
  for (int i = 0; i < 64; ++i) {
    if (other.next_u64() == base.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, PickWeightedRespectsZeroWeight) {
  Rng rng(21);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.pick_weighted({0.0, 1.0, 0.0}), 1u);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

// ---------------------------------------------------------------- Config ---

TEST(ConfigTest, ParsesSectionsAndTypes) {
  const auto config = Config::parse(R"(
# SkyLoader tuning
batch_size = 40

[array_set]
default_rows = 1000
objects = 4000
enable_high_water_mark = true
high_water_fraction = 0.75
)");
  ASSERT_TRUE(config.is_ok());
  EXPECT_EQ(config->get_int("", "batch_size", -1), 40);
  EXPECT_EQ(config->get_int("array_set", "default_rows", -1), 1000);
  EXPECT_EQ(config->get_int("array_set", "objects", -1), 4000);
  EXPECT_TRUE(config->get_bool("array_set", "enable_high_water_mark", false));
  EXPECT_DOUBLE_EQ(config->get_double("array_set", "high_water_fraction", 0),
                   0.75);
}

TEST(ConfigTest, FallbacksWhenMissing) {
  const auto config = Config::parse("a = 1\n");
  ASSERT_TRUE(config.is_ok());
  EXPECT_EQ(config->get_int("", "missing", 99), 99);
  EXPECT_EQ(config->get_string("s", "k", "dflt"), "dflt");
  EXPECT_FALSE(config->has("s", "k"));
  EXPECT_TRUE(config->has("", "a"));
}

TEST(ConfigTest, RejectsMalformedLines) {
  EXPECT_FALSE(Config::parse("[unterminated\n").is_ok());
  EXPECT_FALSE(Config::parse("no equals sign\n").is_ok());
  EXPECT_FALSE(Config::parse("= value\n").is_ok());
}

TEST(ConfigTest, RoundTripsThroughToString) {
  auto config = Config::parse("x = 1\n[s]\ny = two\n");
  ASSERT_TRUE(config.is_ok());
  auto reparsed = Config::parse(config->to_string());
  ASSERT_TRUE(reparsed.is_ok());
  EXPECT_EQ(reparsed->get_int("", "x", -1), 1);
  EXPECT_EQ(reparsed->get_string("s", "y", ""), "two");
}

TEST(ConfigTest, ListsSectionKeys) {
  auto config = Config::parse("[t]\nb = 2\na = 1\n");
  ASSERT_TRUE(config.is_ok());
  const auto keys = config->keys("t");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[1], "b");
}

// ------------------------------------------------------------------- CSV ---

TEST(CsvTest, EscapesSpecials) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvTest, RoundTripsRows) {
  const std::vector<std::string> row = {"1", "a,b", "c\"d", "", "line\nbreak"};
  const auto decoded = csv_decode_row(csv_encode_row(row));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(*decoded, row);
}

TEST(CsvTest, DecodeSimple) {
  const auto fields = csv_decode_row("a,b,,d");
  ASSERT_TRUE(fields.is_ok());
  ASSERT_EQ(fields->size(), 4u);
  EXPECT_EQ((*fields)[2], "");
}

TEST(CsvTest, RejectsBadQuoting) {
  EXPECT_FALSE(csv_decode_row("a\"b").is_ok());
  EXPECT_FALSE(csv_decode_row("\"unterminated").is_ok());
}

// Property: random rows round-trip.
class CsvRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvRoundTrip, RandomRowsRoundTrip) {
  Rng rng(GetParam());
  for (int iteration = 0; iteration < 50; ++iteration) {
    std::vector<std::string> row;
    const int64_t n_fields = rng.uniform_int(1, 8);
    for (int64_t f = 0; f < n_fields; ++f) {
      std::string field;
      const int64_t len = rng.uniform_int(0, 12);
      const char alphabet[] = "ab,\"\n\r x9";
      for (int64_t i = 0; i < len; ++i) {
        field.push_back(
            alphabet[static_cast<size_t>(rng.uniform_int(0, 8))]);
      }
      row.push_back(std::move(field));
    }
    const auto decoded = csv_decode_row(csv_encode_row(row));
    ASSERT_TRUE(decoded.is_ok());
    EXPECT_EQ(*decoded, row);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ----------------------------------------------------------------- units ---

TEST(UnitsTest, Conversions) {
  EXPECT_EQ(from_seconds(2.5), 2'500'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(1'500'000'000), 1.5);
}

TEST(UnitsTest, FormatDuration) {
  EXPECT_EQ(format_duration(500), "500ns");
  EXPECT_EQ(format_duration(2 * kMicrosecond), "2.0us");
  EXPECT_EQ(format_duration(15 * kMillisecond), "15.0ms");
  EXPECT_EQ(format_duration(3 * kSecond), "3.0s");
  EXPECT_EQ(format_duration(135 * kSecond), "2m15.0s");
}

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.0 KiB");
  EXPECT_EQ(format_bytes(3 * kMiB), "3.0 MiB");
  EXPECT_EQ(format_bytes(kGiB + kGiB / 2), "1.50 GiB");
}

}  // namespace
}  // namespace sky
