// Fault injection at the session layer: infrastructure failures (I/O,
// connection loss) must abort the file load rather than being silently
// "skipped" like data errors, and a rolled-back retry must succeed.
#include <gtest/gtest.h>

#include "catalog/generator.h"
#include "catalog/pq_schema.h"
#include "client/session.h"
#include "core/bulk_loader.h"
#include "db/engine.h"

namespace sky::core {
namespace {

// Decorates a session: the Nth execute_batch call reports a given error.
class FaultySession final : public client::Session {
 public:
  FaultySession(client::Session& inner, int64_t fail_on_call, Status failure)
      : inner_(inner), fail_on_call_(fail_on_call),
        failure_(std::move(failure)) {}

  Result<uint32_t> prepare_insert(std::string_view table_name) override {
    return inner_.prepare_insert(table_name);
  }
  client::BatchOutcome execute_batch(
      uint32_t table, std::span<const db::Row> rows) override {
    if (++calls_ == fail_on_call_) {
      // Connection dropped mid-call: nothing applied, error reported.
      client::BatchOutcome outcome;
      outcome.applied = 0;
      outcome.error = db::BatchError{0, failure_};
      return outcome;
    }
    return inner_.execute_batch(table, rows);
  }
  Status execute_single(uint32_t table, const db::Row& row) override {
    return inner_.execute_single(table, row);
  }
  Status commit() override { return inner_.commit(); }
  void client_compute(Nanos duration) override {
    inner_.client_compute(duration);
  }
  void note_buffered_rows(int64_t rows, int64_t bytes,
                          bool columnar) override {
    inner_.note_buffered_rows(rows, bytes, columnar);
  }
  Nanos now() const override { return inner_.now(); }
  const client::SessionStats& stats() const override {
    return inner_.stats();
  }
  int64_t calls() const { return calls_; }

 private:
  client::Session& inner_;
  int64_t calls_ = 0;
  int64_t fail_on_call_;
  Status failure_;
};

class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest() : schema_(catalog::make_pq_schema()), engine_(schema_) {
    client::DirectSession session(engine_);
    BulkLoaderOptions options;
    options.write_audit_row = false;
    BulkLoader loader(session, schema_, options);
    const auto report = loader.load_text(
        "reference", catalog::CatalogGenerator::reference_file().text);
    EXPECT_TRUE(report.is_ok());
    catalog::FileSpec spec;
    spec.seed = 90;
    spec.unit_id = 90;
    spec.target_bytes = 48 * 1024;
    file_ = catalog::CatalogGenerator::generate(spec);
  }

  db::Schema schema_;
  db::Engine engine_;
  catalog::GeneratedFile file_;
};

TEST_F(FaultInjectionTest, IoErrorAbortsTheFileLoad) {
  {
    client::DirectSession real(engine_);
    FaultySession session(real, /*fail_on_call=*/7,
                          Status(ErrorCode::kIoError, "connection reset"));
    BulkLoaderOptions options;
    options.write_audit_row = false;
    BulkLoader loader(session, schema_, options);
    const auto report = loader.load_text("net.cat", file_.text);
    ASSERT_FALSE(report.is_ok());
    EXPECT_EQ(report.status().code(), ErrorCode::kIoError);
    // The failed session's open transaction rolls back on close.
  }
  EXPECT_EQ(engine_.live_view().row_count(engine_.table_id("objects").value()), 0);
  EXPECT_TRUE(engine_.verify_integrity().is_ok());
}

TEST_F(FaultInjectionTest, RetryAfterRollbackLoadsEverything) {
  {
    client::DirectSession real(engine_);
    FaultySession session(real, 5,
                          Status(ErrorCode::kAborted, "server restarted"));
    BulkLoaderOptions options;
    options.write_audit_row = false;
    BulkLoader loader(session, schema_, options);
    ASSERT_FALSE(loader.load_text("retry.cat", file_.text).is_ok());
  }
  // Fresh session, same file: loads cleanly end to end.
  client::DirectSession session(engine_);
  BulkLoaderOptions options;
  options.write_audit_row = false;
  BulkLoader loader(session, schema_, options);
  const auto report = loader.load_text("retry.cat", file_.text);
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report->rows_loaded, file_.data_lines);
  EXPECT_EQ(report->total_skipped(), 0);
  EXPECT_TRUE(engine_.verify_integrity().is_ok());
}

TEST_F(FaultInjectionTest, ResourceExhaustedAlsoAborts) {
  client::DirectSession real(engine_);
  FaultySession session(real, 2,
                        Status(ErrorCode::kResourceExhausted,
                               "too many connections"));
  BulkLoaderOptions options;
  options.write_audit_row = false;
  BulkLoader loader(session, schema_, options);
  const auto report = loader.load_text("exhausted.cat", file_.text);
  ASSERT_FALSE(report.is_ok());
  EXPECT_EQ(report.status().code(), ErrorCode::kResourceExhausted);
}

TEST_F(FaultInjectionTest, ConstraintErrorsStillSkipNotAbort) {
  // Sanity contrast: data errors keep being skipped row by row.
  client::DirectSession session(engine_);
  BulkLoaderOptions options;
  options.write_audit_row = false;
  BulkLoader loader(session, schema_, options);
  catalog::FileSpec dirty;
  dirty.seed = 91;
  dirty.unit_id = 91;
  dirty.target_bytes = 48 * 1024;
  dirty.error_rate = 0.05;
  const auto generated = catalog::CatalogGenerator::generate(dirty);
  const auto report = loader.load_text("dirty.cat", generated.text);
  ASSERT_TRUE(report.is_ok());
  EXPECT_GT(report->rows_skipped_server, 0);
  EXPECT_GT(report->rows_loaded, 0);
}

}  // namespace
}  // namespace sky::core
