// End-to-end integration tests across the whole stack:
// generate -> parse -> load (real threads and simulation) -> query ->
// recover, plus cross-mode equivalence, determinism, the catch-up index
// rebuild workflow, and config-file-driven array-set tuning.
#include <gtest/gtest.h>

#include "catalog/generator.h"
#include "catalog/parser.h"
#include "catalog/pq_schema.h"
#include "client/sim_session.h"
#include "core/coordinator.h"
#include "core/tuning.h"
#include "db/query.h"
#include "db/recovery.h"
#include "htm/htm.h"

namespace sky {
namespace {

const std::string& reference_text() {
  static const std::string text =
      catalog::CatalogGenerator::reference_file().text;
  return text;
}

std::vector<core::CatalogFile> small_night(uint64_t seed, int64_t night,
                                           double error_rate = 0.0) {
  std::vector<core::CatalogFile> files;
  for (const auto& spec : catalog::CatalogGenerator::observation_specs(
           seed, night, 600 * 1024, error_rate)) {
    files.push_back(core::CatalogFile{
        spec.name, catalog::CatalogGenerator::generate(spec).text});
  }
  return files;
}

void load_reference_direct(db::Engine& engine, const db::Schema& schema) {
  client::DirectSession session(engine);
  core::BulkLoaderOptions options;
  options.write_audit_row = false;
  core::BulkLoader loader(session, schema, options);
  ASSERT_TRUE(loader.load_text("reference", reference_text()).is_ok());
}

TEST(IntegrationTest, RealAndSimModesProduceIdenticalRepositories) {
  const db::Schema schema = catalog::make_pq_schema();
  const auto files = small_night(2001, 31, /*error_rate=*/0.02);

  // Real-thread load.
  db::Engine real_engine(schema);
  load_reference_direct(real_engine, schema);
  core::CoordinatorOptions options;
  options.parallel_degree = 3;
  options.loader.write_audit_row = false;
  const auto real_report = core::LoadCoordinator::run_threads(
      files, schema,
      [&](int) { return std::make_unique<client::DirectSession>(real_engine); },
      options);
  ASSERT_TRUE(real_report.is_ok());

  // Simulated load of the same files.
  db::Engine sim_engine(schema);
  load_reference_direct(sim_engine, schema);
  sim::Environment env;
  client::SimServer server(env, sim_engine, client::ServerConfig{});
  const auto sim_report =
      core::LoadCoordinator::run_sim(env, server, files, schema, options);
  ASSERT_TRUE(sim_report.is_ok());

  // Same final repository, bit-for-bit at the logical level — the loader's
  // outcome is independent of the execution backend.
  EXPECT_TRUE(db::engines_equivalent(real_engine, sim_engine).is_ok());
  EXPECT_EQ(real_report->total_rows_loaded, sim_report->total_rows_loaded);
  EXPECT_TRUE(real_engine.verify_integrity().is_ok());
}

TEST(IntegrationTest, SimulationFullyDeterministic) {
  const db::Schema schema = catalog::make_pq_schema();
  const auto files = small_night(2002, 32, /*error_rate=*/0.05);
  auto run = [&]() {
    db::Engine engine(schema);
    load_reference_direct(engine, schema);
    sim::Environment env;
    client::SimServer server(env, engine, client::ServerConfig{});
    core::CoordinatorOptions options;
    options.parallel_degree = 4;
    options.loader.write_audit_row = false;
    const auto report =
        core::LoadCoordinator::run_sim(env, server, files, schema, options);
    EXPECT_TRUE(report.is_ok());
    return std::tuple<Nanos, int64_t, int64_t>(
        report->makespan, report->total_rows_loaded, engine.total_rows());
  };
  EXPECT_EQ(run(), run());
}

TEST(IntegrationTest, CatchUpThenRebuildCompositeIndexAndQuery) {
  // The paper's production plan: load with the composite index delayed,
  // rebuild it once the catch-up phase completes, then serve queries on it.
  const db::Schema schema = catalog::make_pq_schema();
  const core::TuningProfile profile = core::TuningProfile::production();
  db::Engine engine(schema, profile.engine_options());
  ASSERT_TRUE(profile.apply_index_policy(engine).is_ok());
  load_reference_direct(engine, schema);

  client::DirectSession session(engine);
  core::BulkLoader loader(session, schema, profile.bulk_options());
  catalog::FileSpec spec;
  spec.seed = 2003;
  spec.unit_id = 33;
  spec.target_bytes = 256 * 1024;
  const auto report =
      loader.load_text("catchup.cat",
                       catalog::CatalogGenerator::generate(spec).text);
  ASSERT_TRUE(report.is_ok());
  ASSERT_EQ(report->total_skipped(), 0);

  const uint32_t objects = engine.table_id("objects").value();
  db::QueryPlanner planner(engine);
  db::QuerySpec by_position;
  by_position.table = "objects";
  by_position.conditions = {
      {"ra", db::Condition::Op::kGe, db::Value::f64(0.0)},
      {"ra", db::Condition::Op::kLt, db::Value::f64(360.0)}};

  // During catch-up the composite index is down: the planner full-scans.
  const auto during = planner.execute(by_position);
  ASSERT_TRUE(during.is_ok());
  EXPECT_EQ(during->plan, "FULL SCAN objects");

  // Catch-up done: rebuild, and the same query now uses the index.
  ASSERT_TRUE(engine.rebuild_index(objects, catalog::kIndexRaDecMag).is_ok());
  const auto after = planner.execute(by_position);
  ASSERT_TRUE(after.is_ok());
  EXPECT_EQ(after->plan, std::string("INDEX RANGE ") +
                             std::string(catalog::kIndexRaDecMag));
  EXPECT_EQ(after->rows.size(), during->rows.size());
  EXPECT_TRUE(engine.verify_integrity().is_ok());
}

TEST(IntegrationTest, ConfigFileDrivenArraySet) {
  // The future-work extension: per-table array sizes from an INI file.
  const db::Schema schema = catalog::make_pq_schema();
  const auto config = Config::parse(R"(
[array_set]
default_rows = 400
fingers = 2000
objects = 800
memory_high_water_bytes = 3000000
)");
  ASSERT_TRUE(config.is_ok());
  const auto array_config = core::ArraySet::Config::from_config(*config, schema);
  ASSERT_TRUE(array_config.is_ok());

  db::Engine engine(schema);
  load_reference_direct(engine, schema);
  client::DirectSession session(engine);
  core::BulkLoaderOptions options;
  options.array_config = *array_config;
  options.write_audit_row = false;
  core::BulkLoader loader(session, schema, options);
  catalog::FileSpec spec;
  spec.seed = 2004;
  spec.unit_id = 34;
  spec.target_bytes = 128 * 1024;
  const auto file = catalog::CatalogGenerator::generate(spec);
  const auto report = loader.load_text("tuned.cat", file.text);
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report->total_skipped(), 0);
  EXPECT_EQ(report->rows_loaded, file.data_lines);
  // With fingers given 5x the default array, cycles are fewer than the
  // default config would produce on the same data.
  db::Engine engine2(schema);
  load_reference_direct(engine2, schema);
  client::DirectSession session2(engine2);
  core::BulkLoaderOptions default_options;
  default_options.array_config.default_rows = 400;
  default_options.write_audit_row = false;
  core::BulkLoader default_loader(session2, schema, default_options);
  const auto default_report = default_loader.load_text("tuned.cat", file.text);
  ASSERT_TRUE(default_report.is_ok());
  EXPECT_LT(report->flush_cycles, default_report->flush_cycles);
}

TEST(IntegrationTest, ParallelNightSurvivesWalRecovery) {
  const db::Schema schema = catalog::make_pq_schema();
  db::EngineOptions engine_options;
  engine_options.retain_wal_records = true;
  db::Engine engine(schema, engine_options);
  load_reference_direct(engine, schema);
  const auto files = small_night(2005, 35, /*error_rate=*/0.03);
  core::CoordinatorOptions options;
  options.parallel_degree = 3;
  options.loader.write_audit_row = true;
  const auto report = core::LoadCoordinator::run_threads(
      files, schema,
      [&](int) { return std::make_unique<client::DirectSession>(engine); },
      options);
  ASSERT_TRUE(report.is_ok());

  db::RecoveryStats stats;
  const auto recovered = db::recover_from_wal(schema, engine.wal_records(),
                                              db::EngineOptions{}, &stats);
  ASSERT_TRUE(recovered.is_ok()) << recovered.status().to_string();
  EXPECT_TRUE(db::engines_equivalent(engine, **recovered).is_ok());
  EXPECT_TRUE((*recovered)->verify_integrity().is_ok());
  EXPECT_EQ(stats.rows_replayed, engine.total_rows());
}

TEST(IntegrationTest, ConeSearchThroughHtmIndexMatchesBruteForce) {
  const db::Schema schema = catalog::make_pq_schema();
  db::Engine engine(schema);
  load_reference_direct(engine, schema);
  client::DirectSession session(engine);
  core::BulkLoader loader(session, schema, core::BulkLoaderOptions{});
  catalog::FileSpec spec;
  spec.seed = 2006;
  spec.unit_id = 36;
  spec.target_bytes = 256 * 1024;
  ASSERT_TRUE(
      loader
          .load_text("sky.cat", catalog::CatalogGenerator::generate(spec).text)
          .is_ok());

  const uint32_t objects = engine.table_id("objects").value();
  const auto sample =
      engine.live_view().scan_collect(objects, [](const db::Row&) { return true; });
  ASSERT_FALSE(sample.empty());
  const double ra = sample[sample.size() / 2][2].as_f64();
  const double dec = sample[sample.size() / 2][3].as_f64();
  const htm::Vec3 center = htm::radec_to_vector(ra, dec);
  for (const double radius : {0.05, 0.3, 1.0}) {
    std::set<int64_t> via_index;
    for (const htm::IdRange& range : htm::cone_cover(
             center, radius, catalog::CatalogParser::kHtmDepth)) {
      const auto rows = engine.live_view().index_range(
          objects, catalog::kIndexHtmid,
          {db::Value::i64(static_cast<int64_t>(range.first))},
          {db::Value::i64(static_cast<int64_t>(range.last))});
      ASSERT_TRUE(rows.is_ok());
      for (const db::Row& row : *rows) {
        if (htm::angular_distance_deg(
                center, htm::radec_to_vector(row[2].as_f64(),
                                             row[3].as_f64())) <= radius) {
          via_index.insert(row[0].as_i64());
        }
      }
    }
    std::set<int64_t> via_scan;
    for (const db::Row& row : sample) {
      if (htm::angular_distance_deg(
              center, htm::radec_to_vector(row[2].as_f64(),
                                           row[3].as_f64())) <= radius) {
        via_scan.insert(row[0].as_i64());
      }
    }
    EXPECT_EQ(via_index, via_scan) << "radius " << radius;
  }
}

TEST(IntegrationTest, TwoNightsAccumulate) {
  // Consecutive observations load into the same repository without
  // interference (distinct per-night id spaces).
  const db::Schema schema = catalog::make_pq_schema();
  db::Engine engine(schema);
  load_reference_direct(engine, schema);
  core::CoordinatorOptions options;
  options.parallel_degree = 2;
  int64_t after_first = 0;
  for (int night = 1; night <= 2; ++night) {
    const auto files = small_night(3000 + static_cast<uint64_t>(night), night);
    const auto report = core::LoadCoordinator::run_threads(
        files, schema,
        [&](int) { return std::make_unique<client::DirectSession>(engine); },
        options);
    ASSERT_TRUE(report.is_ok());
    int64_t skipped = 0;
    for (const auto& file : report->files) skipped += file.total_skipped();
    EXPECT_EQ(skipped, 0) << "night " << night;
    if (night == 1) after_first = engine.total_rows();
  }
  EXPECT_GT(engine.total_rows(), after_first * 3 / 2);
  EXPECT_TRUE(engine.verify_integrity().is_ok());
  // 28 audit rows per night.
  EXPECT_EQ(engine.live_view().row_count(engine.table_id("load_audit").value()), 56);
}

}  // namespace
}  // namespace sky
