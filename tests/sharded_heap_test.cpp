// ShardedHeap tests: a seeded property battery against a single-HeapFile
// oracle (identical live-row multisets, byte totals, deterministic scans),
// extent addressing rules, two-phase append visibility, and multi-threaded
// append/scan behaviour (also exercised under TSan via the sanitizer CI
// legs).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "storage/heap_file.h"
#include "storage/sharded_heap.h"

namespace sky::storage {
namespace {

// ------------------------------------------------- oracle property battery ---

// Random interleaving of appends (to random extents) and tombstones, applied
// to a ShardedHeap and to a plain HeapFile in lockstep. Physical layout
// differs (the oracle packs one append stream), but every logical property
// must agree.
TEST(ShardedHeapPropertyTest, MatchesSingleHeapOracle) {
  for (const uint64_t seed : {1ull, 7ull, 42ull, 1234ull, 987654321ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    const auto extents = static_cast<uint32_t>(rng.uniform_int(1, 8));
    ShardedHeap sharded(extents);
    HeapFile oracle;

    struct LiveRow {
      SlotId sharded_slot;
      SlotId oracle_slot;
      std::string payload;
    };
    std::vector<LiveRow> live;
    for (int op = 0; op < 2000; ++op) {
      if (!live.empty() && rng.bernoulli(0.25)) {
        const auto victim = static_cast<size_t>(
            rng.uniform_int(0, static_cast<int64_t>(live.size()) - 1));
        ASSERT_TRUE(sharded.mark_deleted(live[victim].sharded_slot).is_ok());
        ASSERT_TRUE(oracle.mark_deleted(live[victim].oracle_slot).is_ok());
        live.erase(live.begin() + static_cast<ptrdiff_t>(victim));
      } else {
        std::string payload =
            rng.ident(static_cast<size_t>(rng.uniform_int(5, 120)));
        const auto extent =
            static_cast<uint32_t>(rng.uniform_int(0, extents - 1));
        const auto s = sharded.append(extent, payload);
        const auto o = oracle.append(payload);
        EXPECT_EQ(s.slot.extent, extent);
        live.push_back({s.slot, o.slot, std::move(payload)});
      }
    }

    EXPECT_EQ(sharded.row_count(), oracle.row_count());
    EXPECT_EQ(sharded.total_bytes(), oracle.total_bytes());
    EXPECT_EQ(sharded.row_count(), static_cast<int64_t>(live.size()));

    // Identical live-row multisets.
    std::multiset<std::string> expected, seen;
    for (const LiveRow& row : live) expected.insert(row.payload);
    sharded.scan([&](SlotId, std::string_view bytes) {
      seen.insert(std::string(bytes));
    });
    EXPECT_EQ(seen, expected);

    // Point reads agree with the oracle row-for-row; then drain everything.
    for (const LiveRow& row : live) {
      ASSERT_TRUE(sharded.read(row.sharded_slot).is_ok());
      EXPECT_EQ(sharded.read(row.sharded_slot).value(),
                oracle.read(row.oracle_slot).value());
      ASSERT_TRUE(sharded.mark_deleted(row.sharded_slot).is_ok());
      EXPECT_FALSE(sharded.read(row.sharded_slot).is_ok());
      ASSERT_TRUE(oracle.mark_deleted(row.oracle_slot).is_ok());
    }
    EXPECT_EQ(sharded.row_count(), 0);
    EXPECT_EQ(sharded.total_bytes(), 0);
  }
}

TEST(ShardedHeapPropertyTest, ScanIsDeterministicAndExtentOrdered) {
  Rng rng(2024);
  ShardedHeap heap(6);
  for (int i = 0; i < 1500; ++i) {
    heap.append(static_cast<uint32_t>(rng.uniform_int(0, 5)),
                rng.ident(static_cast<size_t>(rng.uniform_int(3, 40))));
  }
  auto collect = [&heap] {
    std::vector<std::pair<SlotId, std::string>> out;
    heap.scan([&](SlotId slot, std::string_view bytes) {
      out.emplace_back(slot, std::string(bytes));
    });
    return out;
  };
  const auto first = collect();
  const auto second = collect();
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].first, second[i].first);
    EXPECT_EQ(first[i].second, second[i].second);
  }
  // Extent-major order: extent ascending; page then slot ascending within.
  for (size_t i = 1; i < first.size(); ++i) {
    const SlotId& prev = first[i - 1].first;
    const SlotId& cur = first[i].first;
    const auto key = [](const SlotId& s) {
      return (static_cast<uint64_t>(s.extent) << 44) |
             (static_cast<uint64_t>(s.page) << 20) | s.slot;
    };
    EXPECT_LT(key(prev), key(cur));
  }
}

// --------------------------------------------------------- extent addressing ---

TEST(ShardedHeapTest, AppendClampsExtentIntoRange) {
  ShardedHeap heap(8);
  EXPECT_EQ(heap.extent_count(), 8u);
  EXPECT_EQ(heap.append(11, "a").slot.extent, 3u);  // 11 % 8
  EXPECT_EQ(heap.append(7, "b").slot.extent, 7u);
  // Reads and deletes reject out-of-range extents instead of clamping:
  // a SlotId names a physical location, not a request.
  EXPECT_FALSE(heap.read(SlotId{9, 0, 0}).is_ok());
  EXPECT_FALSE(heap.mark_deleted(SlotId{9, 0, 0}).is_ok());
}

TEST(ShardedHeapTest, ExtentsPackPagesIndependently) {
  ShardedHeap heap(2);
  const std::string half(kPageSize / 2 + 100, 'x');
  // Two big rows in one extent need two pages; spread over two extents
  // they fit one page each.
  heap.append(0, half);
  heap.append(0, half);
  heap.append(1, half);
  const auto stats = heap.extent_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].rows, 2);
  EXPECT_EQ(stats[0].pages, 2);
  EXPECT_EQ(stats[1].rows, 1);
  EXPECT_EQ(stats[1].pages, 1);
  EXPECT_EQ(heap.page_count(), 3);
  EXPECT_EQ(heap.row_count(), 3);
}

TEST(ShardedHeapTest, SingleExtentMatchesHeapFileLayout) {
  // With one extent the sharded heap must reproduce the plain HeapFile
  // packing exactly (the engine's pre-sharding default).
  ShardedHeap sharded(1);
  HeapFile plain;
  Rng rng(55);
  for (int i = 0; i < 800; ++i) {
    const std::string row =
        rng.ident(static_cast<size_t>(rng.uniform_int(10, 300)));
    const auto s = sharded.append(0, row);
    const auto p = plain.append(row);
    EXPECT_EQ(s.slot, p.slot);
    EXPECT_EQ(s.opened_new_page, p.opened_new_page);
  }
  EXPECT_EQ(sharded.page_count(), plain.page_count());
}

// --------------------------------------------------- least-loaded extents ---

TEST(ShardedHeapTest, LeastLoadedExtentTracksAppendedBytes) {
  ShardedHeap heap(4);
  // Empty heap: all extents tie at zero; lowest index wins.
  EXPECT_EQ(heap.least_loaded_extent(), 0u);
  // Skew the load: extents 0 and 1 heavy, extent 2 light, extent 3 empty.
  heap.append(0, std::string(500, 'a'));
  heap.append(1, std::string(400, 'b'));
  heap.append(2, std::string(10, 'c'));
  EXPECT_EQ(heap.least_loaded_extent(), 3u);
  heap.append(3, std::string(50, 'd'));
  EXPECT_EQ(heap.least_loaded_extent(), 2u);
  // Ties break toward the lowest index.
  ShardedHeap even(3);
  even.append(0, "xx");
  even.append(1, "yy");
  even.append(2, "zz");
  EXPECT_EQ(even.least_loaded_extent(), 0u);
}

TEST(ShardedHeapTest, LeastLoadedCountsPendingAndIgnoresTombstones) {
  ShardedHeap heap(2);
  // A pending (uncommitted) append counts as load immediately: concurrent
  // pickers must not all pile onto an extent whose rows aren't published yet.
  const auto pending = heap.append_pending(0, std::string(300, 'p'));
  EXPECT_EQ(heap.least_loaded_extent(), 1u);
  // Discarding the pending row does NOT give the bytes back — the signal is
  // bytes-ever-appended, matching how heap files never shrink.
  ASSERT_TRUE(heap.discard(pending.slot).is_ok());
  EXPECT_EQ(heap.least_loaded_extent(), 1u);
  // Deletes don't subtract either.
  const auto live = heap.append(1, std::string(600, 'q'));
  EXPECT_EQ(heap.least_loaded_extent(), 0u);  // 300 (extent 0) vs 600
  ASSERT_TRUE(heap.mark_deleted(live.slot).is_ok());
  EXPECT_EQ(heap.least_loaded_extent(), 0u);  // still 300 vs 600
}

// ------------------------------------------------------- two-phase appends ---

TEST(ShardedHeapTest, PendingRowsInvisibleUntilPublished) {
  ShardedHeap heap(4);
  heap.append(1, "live");
  const auto pending = heap.append_pending(2, "ghost");
  EXPECT_EQ(heap.row_count(), 1);
  EXPECT_FALSE(heap.read(pending.slot).is_ok());
  int scanned = 0;
  heap.scan([&](SlotId, std::string_view) { ++scanned; });
  EXPECT_EQ(scanned, 1);

  ASSERT_TRUE(heap.publish(pending.slot).is_ok());
  EXPECT_EQ(heap.row_count(), 2);
  EXPECT_EQ(heap.read(pending.slot).value(), "ghost");

  const auto doomed = heap.append_pending(2, "discarded");
  ASSERT_TRUE(heap.discard(doomed.slot).is_ok());
  EXPECT_EQ(heap.row_count(), 2);
  EXPECT_FALSE(heap.read(doomed.slot).is_ok());
  EXPECT_FALSE(heap.publish(doomed.slot).is_ok());
}

// ------------------------------------------------------------- concurrency ---

TEST(ShardedHeapConcurrencyTest, ParallelAppendsToDistinctExtents) {
  constexpr uint32_t kThreads = 8;
  constexpr int kRowsPerThread = 500;
  ShardedHeap heap(kThreads);
  std::vector<std::thread> workers;
  std::vector<int> extent_mismatches(kThreads, 0);
  workers.reserve(kThreads);
  for (uint32_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&heap, &extent_mismatches, t] {
      for (int i = 0; i < kRowsPerThread; ++i) {
        const auto r = heap.append(
            t, "t" + std::to_string(t) + "-" + std::to_string(i));
        if (r.slot.extent != t) ++extent_mismatches[t];
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  for (uint32_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(extent_mismatches[t], 0);
  }
  EXPECT_EQ(heap.row_count(), int64_t{kThreads} * kRowsPerThread);
  const auto stats = heap.extent_stats();
  ASSERT_EQ(stats.size(), kThreads);
  for (uint32_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(stats[t].rows, kRowsPerThread);
  }
  // Within an extent, one thread's rows appear in its append order.
  std::vector<int> next_index(kThreads, 0);
  std::vector<int> order_violations(kThreads, 0);
  heap.scan([&](SlotId slot, std::string_view bytes) {
    const std::string expected = "t" + std::to_string(slot.extent) + "-" +
                                 std::to_string(next_index[slot.extent]);
    if (std::string(bytes) != expected) ++order_violations[slot.extent];
    ++next_index[slot.extent];
  });
  for (uint32_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(order_violations[t], 0);
  }
}

TEST(ShardedHeapConcurrencyTest, SharedExtentAppendsStaySequential) {
  // All threads hammer ONE extent: appends must serialize without losing
  // rows or corrupting page accounting.
  ShardedHeap heap(4);
  constexpr int kThreads = 6;
  constexpr int kRowsPerThread = 400;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&heap] {
      for (int i = 0; i < kRowsPerThread; ++i) heap.append(2, "payload");
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(heap.row_count(), int64_t{kThreads} * kRowsPerThread);
  const auto stats = heap.extent_stats();
  EXPECT_EQ(stats[2].rows, int64_t{kThreads} * kRowsPerThread);
  EXPECT_EQ(stats[0].rows, 0);
  std::set<std::tuple<uint32_t, uint32_t, uint32_t>> unique_slots;
  heap.scan([&](SlotId slot, std::string_view) {
    unique_slots.insert({slot.extent, slot.page, slot.slot});
  });
  EXPECT_EQ(unique_slots.size(),
            static_cast<size_t>(kThreads * kRowsPerThread));
}

TEST(ShardedHeapConcurrencyTest, ViewsSurviveConcurrentAppends) {
  // Regression for the dangling-string_view bug: a view returned by read()
  // must stay valid while other threads grow every extent past many page
  // boundaries (chunk-stable storage, no reallocation of row bytes).
  ShardedHeap heap(4);
  const auto anchor = heap.append(3, "anchor-row");
  const std::string_view view = heap.read(anchor.slot).value();
  const char* anchor_data = view.data();

  std::vector<std::thread> workers;
  const std::string filler(kPageSize / 4, 'z');
  for (uint32_t t = 0; t < 4; ++t) {
    workers.emplace_back([&heap, &filler, t] {
      for (int i = 0; i < 1000; ++i) heap.append(t, filler);
    });
  }
  for (std::thread& worker : workers) worker.join();
  ASSERT_GT(heap.page_count(), 100);
  EXPECT_EQ(view, "anchor-row");
  EXPECT_EQ(heap.read(anchor.slot).value().data(), anchor_data);
}

}  // namespace
}  // namespace sky::storage
