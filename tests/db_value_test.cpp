// Tests for typed values, the row codec, and schema validation.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "db/row.h"
#include "db/schema.h"
#include "db/value.h"

namespace sky::db {
namespace {

// ----------------------------------------------------------------- Value ---

TEST(ValueTest, NullBasics) {
  const Value v = Value::null();
  EXPECT_TRUE(v.is_null());
  EXPECT_TRUE(v.matches(ColumnType::kInt64));
  EXPECT_TRUE(v.matches(ColumnType::kString));
  EXPECT_EQ(v.to_display(), "NULL");
  EXPECT_FALSE(v.numeric().is_ok());
}

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_EQ(Value::i32(-5).as_i32(), -5);
  EXPECT_EQ(Value::i64(1LL << 40).as_i64(), 1LL << 40);
  EXPECT_DOUBLE_EQ(Value::f64(2.5).as_f64(), 2.5);
  EXPECT_EQ(Value::str("abc").as_str(), "abc");
  EXPECT_EQ(Value::timestamp(123456).as_i64(), 123456);
}

TEST(ValueTest, TypeMatching) {
  EXPECT_TRUE(Value::i32(1).matches(ColumnType::kInt32));
  EXPECT_FALSE(Value::i32(1).matches(ColumnType::kInt64));
  EXPECT_TRUE(Value::i64(1).matches(ColumnType::kInt64));
  EXPECT_TRUE(Value::i64(1).matches(ColumnType::kTimestamp));
  EXPECT_FALSE(Value::f64(1).matches(ColumnType::kInt64));
  EXPECT_TRUE(Value::str("x").matches(ColumnType::kString));
  EXPECT_FALSE(Value::str("x").matches(ColumnType::kDouble));
}

TEST(ValueTest, NumericView) {
  EXPECT_DOUBLE_EQ(Value::i32(-4).numeric().value(), -4.0);
  EXPECT_DOUBLE_EQ(Value::i64(10).numeric().value(), 10.0);
  EXPECT_DOUBLE_EQ(Value::f64(0.5).numeric().value(), 0.5);
  EXPECT_FALSE(Value::str("no").numeric().is_ok());
}

TEST(ValueTest, CompareOrdering) {
  EXPECT_LT(Value::null().compare(Value::i64(0)), 0);
  EXPECT_EQ(Value::null().compare(Value::null()), 0);
  EXPECT_LT(Value::i64(1).compare(Value::i64(2)), 0);
  EXPECT_GT(Value::i64(2).compare(Value::i64(1)), 0);
  EXPECT_EQ(Value::f64(1.5).compare(Value::f64(1.5)), 0);
  EXPECT_LT(Value::str("a").compare(Value::str("b")), 0);
  // Cross numeric kinds compare by value.
  EXPECT_EQ(Value::i32(3).compare(Value::f64(3.0)), 0);
  EXPECT_LT(Value::i64(2).compare(Value::f64(2.5)), 0);
}

TEST(ValueTest, ParseAs) {
  EXPECT_EQ(Value::parse_as(ColumnType::kInt32, "42")->as_i32(), 42);
  EXPECT_EQ(Value::parse_as(ColumnType::kInt64, "-9")->as_i64(), -9);
  EXPECT_DOUBLE_EQ(Value::parse_as(ColumnType::kDouble, "1.25")->as_f64(),
                   1.25);
  EXPECT_EQ(Value::parse_as(ColumnType::kString, " padded ")->as_str(),
            "padded");
  EXPECT_EQ(Value::parse_as(ColumnType::kTimestamp, "1000")->as_i64(), 1000);
}

TEST(ValueTest, ParseNullMarkers) {
  EXPECT_TRUE(Value::parse_as(ColumnType::kInt64, "")->is_null());
  EXPECT_TRUE(Value::parse_as(ColumnType::kDouble, "NULL")->is_null());
  EXPECT_TRUE(Value::parse_as(ColumnType::kString, "\\N")->is_null());
}

TEST(ValueTest, ParseErrors) {
  EXPECT_FALSE(Value::parse_as(ColumnType::kInt32, "abc").is_ok());
  EXPECT_FALSE(Value::parse_as(ColumnType::kInt32, "99999999999").is_ok());
  EXPECT_FALSE(Value::parse_as(ColumnType::kDouble, "1.2.3").is_ok());
  EXPECT_FALSE(Value::parse_as(ColumnType::kDouble, "nan").is_ok());
}

// ------------------------------------------------------------- row codec ---

TEST(RowCodecTest, RoundTripAllKinds) {
  const Row row = {Value::null(), Value::i32(-7), Value::i64(1LL << 50),
                   Value::f64(-0.125), Value::str("palomar"),
                   Value::str(std::string("\0\x01", 2))};
  const auto decoded = decode_row(encode_row(row));
  ASSERT_TRUE(decoded.is_ok());
  ASSERT_EQ(decoded->size(), row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    EXPECT_EQ((*decoded)[i].compare(row[i]), 0) << i;
  }
}

TEST(RowCodecTest, EmptyRow) {
  const auto decoded = decode_row(encode_row({}));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(RowCodecTest, RejectsCorruption) {
  const Row row = {Value::i64(5), Value::str("x")};
  std::string bytes = encode_row(row);
  EXPECT_FALSE(decode_row(bytes.substr(0, bytes.size() - 1)).is_ok());
  EXPECT_FALSE(decode_row(bytes + "junk").is_ok());
  std::string bad_kind = bytes;
  bad_kind[4] = '\x7F';
  EXPECT_FALSE(decode_row(bad_kind).is_ok());
  EXPECT_FALSE(decode_row("").is_ok());
}

TEST(RowCodecTest, PreservesDoubleBits) {
  const Row row = {Value::f64(std::numeric_limits<double>::denorm_min()),
                   Value::f64(-0.0),
                   Value::f64(std::numeric_limits<double>::infinity())};
  const auto decoded = decode_row(encode_row(row));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(std::signbit((*decoded)[1].as_f64()), true);
  EXPECT_TRUE(std::isinf((*decoded)[2].as_f64()));
}

class RowCodecFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RowCodecFuzz, RandomRowsRoundTrip) {
  Rng rng(GetParam());
  for (int iteration = 0; iteration < 200; ++iteration) {
    Row row;
    const int64_t columns = rng.uniform_int(0, 12);
    for (int64_t c = 0; c < columns; ++c) {
      switch (rng.uniform_int(0, 4)) {
        case 0: row.push_back(Value::null()); break;
        case 1:
          row.push_back(Value::i32(static_cast<int32_t>(
              rng.uniform_int(INT32_MIN, INT32_MAX))));
          break;
        case 2:
          row.push_back(Value::i64(static_cast<int64_t>(rng.next_u64())));
          break;
        case 3: row.push_back(Value::f64(rng.normal(0, 1e9))); break;
        default:
          row.push_back(Value::str(rng.ident(
              static_cast<size_t>(rng.uniform_int(0, 30)))));
      }
    }
    const auto decoded = decode_row(encode_row(row));
    ASSERT_TRUE(decoded.is_ok());
    ASSERT_EQ(decoded->size(), row.size());
    for (size_t i = 0; i < row.size(); ++i) {
      EXPECT_EQ((*decoded)[i].compare(row[i]), 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RowCodecFuzz, ::testing::Values(7, 8, 9));

TEST(RowMemoryTest, GrowsWithStringContent) {
  const Row small = {Value::i64(1)};
  const Row big = {Value::i64(1), Value::str(std::string(1000, 'x'))};
  EXPECT_GT(row_memory_bytes(big), row_memory_bytes(small) + 900);
}

// ---------------------------------------------------------------- Schema ---

TableDef simple_table(std::string name) {
  TableDef def;
  def.name = std::move(name);
  def.col("id", ColumnType::kInt64, false);
  def.col("payload", ColumnType::kString);
  def.primary_key = {"id"};
  return def;
}

TEST(SchemaTest, AddAndLookup) {
  Schema schema;
  ASSERT_TRUE(schema.add_table(simple_table("alpha")).is_ok());
  ASSERT_TRUE(schema.add_table(simple_table("beta")).is_ok());
  EXPECT_EQ(schema.table_count(), 2);
  EXPECT_TRUE(schema.has_table("alpha"));
  EXPECT_FALSE(schema.has_table("gamma"));
  EXPECT_EQ(schema.table_id("beta").value(), 1u);
  EXPECT_EQ(schema.table(0).name, "alpha");
  EXPECT_FALSE(schema.table_id("gamma").is_ok());
}

TEST(SchemaTest, RejectsDuplicatesAndEmpties) {
  Schema schema;
  ASSERT_TRUE(schema.add_table(simple_table("t")).is_ok());
  EXPECT_EQ(schema.add_table(simple_table("t")).code(),
            ErrorCode::kAlreadyExists);
  TableDef empty;
  empty.name = "empty";
  EXPECT_FALSE(schema.add_table(empty).is_ok());
  TableDef unnamed = simple_table("");
  EXPECT_FALSE(schema.add_table(unnamed).is_ok());
}

TEST(SchemaTest, RejectsMissingOrDuplicateColumns) {
  Schema schema;
  TableDef def = simple_table("t");
  def.col("payload", ColumnType::kInt32);  // duplicate name
  EXPECT_FALSE(schema.add_table(def).is_ok());

  TableDef no_pk_col = simple_table("u");
  no_pk_col.primary_key = {"ghost"};
  EXPECT_FALSE(schema.add_table(no_pk_col).is_ok());

  TableDef no_pk = simple_table("v");
  no_pk.primary_key.clear();
  EXPECT_FALSE(schema.add_table(no_pk).is_ok());
}

TEST(SchemaTest, PkColumnsBecomeNotNull) {
  Schema schema;
  TableDef def = simple_table("t");  // declares id nullable=false already
  def.columns[0].nullable = true;    // sneaky: PK column marked nullable
  ASSERT_TRUE(schema.add_table(def).is_ok());
  EXPECT_FALSE(schema.table(0).columns[0].nullable);
}

TEST(SchemaTest, FkValidation) {
  Schema schema;
  ASSERT_TRUE(schema.add_table(simple_table("parent")).is_ok());

  TableDef child = simple_table("child");
  child.col("parent_id", ColumnType::kInt64);
  child.foreign_keys.push_back(ForeignKey{{"parent_id"}, "parent"});
  ASSERT_TRUE(schema.add_table(child).is_ok());

  // FK to an undeclared table fails (declaration order is the topo order).
  TableDef orphan = simple_table("orphan");
  orphan.col("missing_id", ColumnType::kInt64);
  orphan.foreign_keys.push_back(ForeignKey{{"missing_id"}, "nonexistent"});
  EXPECT_FALSE(schema.add_table(orphan).is_ok());

  // FK type mismatch fails.
  TableDef mismatched = simple_table("mismatched");
  mismatched.col("parent_id", ColumnType::kInt32);
  mismatched.foreign_keys.push_back(ForeignKey{{"parent_id"}, "parent"});
  EXPECT_FALSE(schema.add_table(mismatched).is_ok());

  // FK arity mismatch fails.
  TableDef wide = simple_table("wide");
  wide.col("a", ColumnType::kInt64);
  wide.col("b", ColumnType::kInt64);
  wide.foreign_keys.push_back(ForeignKey{{"a", "b"}, "parent"});
  EXPECT_FALSE(schema.add_table(wide).is_ok());
}

TEST(SchemaTest, IndexAndCheckValidation) {
  Schema schema;
  TableDef def = simple_table("t");
  def.col("mag", ColumnType::kDouble);
  def.indexes.push_back(IndexDef{"idx_mag", {"mag"}, false});
  def.checks.push_back(CheckConstraint{"mag", -5.0, 40.0});
  ASSERT_TRUE(schema.add_table(def).is_ok());

  TableDef bad_index = simple_table("u");
  bad_index.indexes.push_back(IndexDef{"idx", {"ghost"}, false});
  EXPECT_FALSE(schema.add_table(bad_index).is_ok());

  TableDef dup_index = simple_table("v");
  dup_index.col("m", ColumnType::kDouble);
  dup_index.indexes.push_back(IndexDef{"i", {"m"}, false});
  dup_index.indexes.push_back(IndexDef{"i", {"m"}, false});
  EXPECT_FALSE(schema.add_table(dup_index).is_ok());

  TableDef string_check = simple_table("w");
  string_check.checks.push_back(CheckConstraint{"payload", 0.0, 1.0});
  EXPECT_FALSE(schema.add_table(string_check).is_ok());

  TableDef ghost_check = simple_table("x");
  ghost_check.checks.push_back(CheckConstraint{"ghost", 0.0, 1.0});
  EXPECT_FALSE(schema.add_table(ghost_check).is_ok());
}

TEST(SchemaTest, TopologicalOrderAndEdges) {
  Schema schema;
  ASSERT_TRUE(schema.add_table(simple_table("a")).is_ok());
  TableDef b = simple_table("b");
  b.col("a_id", ColumnType::kInt64);
  b.foreign_keys.push_back(ForeignKey{{"a_id"}, "a"});
  ASSERT_TRUE(schema.add_table(b).is_ok());
  TableDef c = simple_table("c");
  c.col("b_id", ColumnType::kInt64);
  c.col("a_id", ColumnType::kInt64);
  c.foreign_keys.push_back(ForeignKey{{"b_id"}, "b"});
  c.foreign_keys.push_back(ForeignKey{{"a_id"}, "a"});
  ASSERT_TRUE(schema.add_table(c).is_ok());

  const auto order = schema.topological_order();
  ASSERT_EQ(order.size(), 3u);
  // Parents appear before children.
  EXPECT_LT(order[0], order[1]);
  EXPECT_LT(order[1], order[2]);

  const auto edges = schema.fk_edges();
  EXPECT_EQ(edges.size(), 3u);
  for (const auto& [child, parent] : edges) EXPECT_GT(child, parent);
}

}  // namespace
}  // namespace sky::db
