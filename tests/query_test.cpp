// Query planner tests: access-path selection (PK range, secondary index
// range, full scan), condition semantics, ordering/limit, and a randomized
// differential test against brute-force filtering.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "db/engine.h"
#include "db/query.h"

namespace sky::db {
namespace {

Schema stars_schema() {
  Schema schema;
  TableDef stars;
  stars.name = "stars";
  stars.col("star_id", ColumnType::kInt64, false);
  stars.col("field", ColumnType::kInt32, false);
  stars.col("mag", ColumnType::kDouble);
  stars.col("color", ColumnType::kDouble);
  stars.col("name", ColumnType::kString);
  stars.primary_key = {"star_id"};
  stars.indexes.push_back(IndexDef{"idx_field_mag", {"field", "mag"}, false});
  EXPECT_TRUE(schema.add_table(stars).is_ok());
  return schema;
}

class QueryTest : public ::testing::Test {
 protected:
  QueryTest() : engine_(stars_schema()), planner_(engine_) {
    const uint64_t txn = engine_.begin_transaction();
    OpCosts costs;
    Rng rng(31415);
    for (int64_t i = 0; i < 500; ++i) {
      const Row row = {Value::i64(i), Value::i32(static_cast<int32_t>(i % 7)),
                       Value::f64(15.0 + static_cast<double>(i % 100) * 0.1),
                       Value::f64(rng.uniform_range(-0.5, 2.0)),
                       Value::str("star-" + std::to_string(i))};
      EXPECT_TRUE(engine_.insert_row(txn, 0, row, costs).is_ok());
    }
    EXPECT_TRUE(engine_.commit(txn).is_ok());
  }

  Engine engine_;
  QueryPlanner planner_;
};

TEST_F(QueryTest, FullScanWhenNoUsableIndex) {
  QuerySpec spec;
  spec.table = "stars";
  spec.conditions = {{"color", Condition::Op::kGt, Value::f64(1.5)}};
  const auto result = planner_.execute(spec);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result->plan, "FULL SCAN stars");
  EXPECT_EQ(result->rows_examined, 500);
  for (const Row& row : result->rows) EXPECT_GT(row[3].as_f64(), 1.5);
}

TEST_F(QueryTest, PkEqualityUsesPkRange) {
  QuerySpec spec;
  spec.table = "stars";
  spec.conditions = {{"star_id", Condition::Op::kEq, Value::i64(42)}};
  const auto result = planner_.execute(spec);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result->plan, "PK RANGE stars");
  EXPECT_EQ(result->rows_examined, 1);
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].as_i64(), 42);
}

TEST_F(QueryTest, PkRangeBoundsInclusiveExclusive) {
  QuerySpec spec;
  spec.table = "stars";
  spec.conditions = {{"star_id", Condition::Op::kGe, Value::i64(10)},
                     {"star_id", Condition::Op::kLt, Value::i64(20)}};
  const auto result = planner_.execute(spec);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result->plan, "PK RANGE stars");
  EXPECT_EQ(result->rows.size(), 10u);
  // The range consumed the conditions: nothing extra examined.
  EXPECT_EQ(result->rows_examined, 10);

  spec.conditions = {{"star_id", Condition::Op::kGt, Value::i64(10)},
                     {"star_id", Condition::Op::kLe, Value::i64(20)}};
  const auto open_closed = planner_.execute(spec);
  ASSERT_TRUE(open_closed.is_ok());
  EXPECT_EQ(open_closed->rows.size(), 10u);
  EXPECT_EQ(open_closed->rows.front()[0].as_i64(), 11);
  EXPECT_EQ(open_closed->rows.back()[0].as_i64(), 20);
}

TEST_F(QueryTest, CompositeIndexEqThenRange) {
  QuerySpec spec;
  spec.table = "stars";
  spec.conditions = {{"field", Condition::Op::kEq, Value::i32(3)},
                     {"mag", Condition::Op::kLt, Value::f64(18.0)}};
  const auto result = planner_.execute(spec);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result->plan, "INDEX RANGE idx_field_mag");
  for (const Row& row : result->rows) {
    EXPECT_EQ(row[1].as_i32(), 3);
    EXPECT_LT(row[2].as_f64(), 18.0);
  }
  // Examined only the index-range hits, a strict subset of the table.
  EXPECT_LT(result->rows_examined, 500);
  EXPECT_EQ(static_cast<size_t>(result->rows_examined),
            result->rows.size());
}

TEST_F(QueryTest, IndexEqualityPrefixOnly) {
  QuerySpec spec;
  spec.table = "stars";
  spec.conditions = {{"field", Condition::Op::kEq, Value::i32(5)}};
  const auto result = planner_.execute(spec);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result->plan, "INDEX RANGE idx_field_mag");
  size_t expected = 0;
  for (int64_t i = 0; i < 500; ++i) {
    if (i % 7 == 5) ++expected;
  }
  EXPECT_EQ(result->rows.size(), expected);
}

TEST_F(QueryTest, DisabledIndexFallsBackToScan) {
  ASSERT_TRUE(engine_.set_index_enabled(0, "idx_field_mag", false).is_ok());
  QuerySpec spec;
  spec.table = "stars";
  spec.conditions = {{"field", Condition::Op::kEq, Value::i32(5)}};
  const auto result = planner_.execute(spec);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result->plan, "FULL SCAN stars");
  // Same answer, different path.
  size_t expected = 0;
  for (int64_t i = 0; i < 500; ++i) {
    if (i % 7 == 5) ++expected;
  }
  EXPECT_EQ(result->rows.size(), expected);
}

TEST_F(QueryTest, PlannerPrefersPathConsumingMoreConditions) {
  // star_id range (1 condition) vs field+mag (2 conditions): index wins.
  QuerySpec spec;
  spec.table = "stars";
  spec.conditions = {{"star_id", Condition::Op::kGe, Value::i64(0)},
                     {"field", Condition::Op::kEq, Value::i32(2)},
                     {"mag", Condition::Op::kGe, Value::f64(20.0)}};
  const auto result = planner_.execute(spec);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result->plan, "INDEX RANGE idx_field_mag");
  for (const Row& row : result->rows) {
    EXPECT_EQ(row[1].as_i32(), 2);
    EXPECT_GE(row[2].as_f64(), 20.0);
  }
}

TEST_F(QueryTest, OrderByAndLimit) {
  QuerySpec spec;
  spec.table = "stars";
  spec.conditions = {{"field", Condition::Op::kEq, Value::i32(1)}};
  spec.order_by = "mag";
  spec.descending = true;
  spec.limit = 5;
  const auto result = planner_.execute(spec);
  ASSERT_TRUE(result.is_ok());
  ASSERT_EQ(result->rows.size(), 5u);
  for (size_t i = 1; i < result->rows.size(); ++i) {
    EXPECT_GE(result->rows[i - 1][2].as_f64(), result->rows[i][2].as_f64());
  }
}

TEST_F(QueryTest, LimitZeroAndNoConditions) {
  QuerySpec all;
  all.table = "stars";
  const auto everything = planner_.execute(all);
  ASSERT_TRUE(everything.is_ok());
  EXPECT_EQ(everything->rows.size(), 500u);
  all.limit = 0;
  const auto none = planner_.execute(all);
  ASSERT_TRUE(none.is_ok());
  EXPECT_TRUE(none->rows.empty());
}

TEST_F(QueryTest, ValidationErrors) {
  QuerySpec bad_table;
  bad_table.table = "ghosts";
  EXPECT_FALSE(planner_.execute(bad_table).is_ok());

  QuerySpec bad_column;
  bad_column.table = "stars";
  bad_column.conditions = {{"ghost", Condition::Op::kEq, Value::i64(1)}};
  EXPECT_FALSE(planner_.execute(bad_column).is_ok());

  QuerySpec bad_type;
  bad_type.table = "stars";
  bad_type.conditions = {{"star_id", Condition::Op::kEq, Value::str("x")}};
  EXPECT_EQ(planner_.execute(bad_type).status().code(),
            ErrorCode::kTypeMismatch);

  QuerySpec null_value;
  null_value.table = "stars";
  null_value.conditions = {{"star_id", Condition::Op::kEq, Value::null()}};
  EXPECT_FALSE(planner_.execute(null_value).is_ok());

  QuerySpec bad_order;
  bad_order.table = "stars";
  bad_order.order_by = "ghost";
  EXPECT_FALSE(planner_.execute(bad_order).is_ok());
}

TEST_F(QueryTest, NullColumnValuesMatchNothing) {
  const uint64_t txn = engine_.begin_transaction();
  OpCosts costs;
  ASSERT_TRUE(engine_
                  .insert_row(txn, 0,
                              {Value::i64(9999), Value::i32(1), Value::null(),
                               Value::null(), Value::null()},
                              costs)
                  .is_ok());
  ASSERT_TRUE(engine_.commit(txn).is_ok());
  QuerySpec spec;
  spec.table = "stars";
  spec.conditions = {{"mag", Condition::Op::kGt, Value::f64(-1e9)}};
  const auto result = planner_.execute(spec);
  ASSERT_TRUE(result.is_ok());
  for (const Row& row : result->rows) EXPECT_NE(row[0].as_i64(), 9999);
}

// Differential property: planner output equals brute-force filter for
// random condition sets, regardless of chosen path.
class QueryFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueryFuzz, MatchesBruteForce) {
  Engine engine(stars_schema());
  QueryPlanner planner(engine);
  Rng rng(GetParam());
  const uint64_t txn = engine.begin_transaction();
  OpCosts costs;
  for (int64_t i = 0; i < 300; ++i) {
    const Row row = {Value::i64(rng.uniform_int(0, 2000)),
                     Value::i32(static_cast<int32_t>(rng.uniform_int(0, 9))),
                     Value::f64(rng.uniform_range(10, 25)),
                     Value::f64(rng.uniform_range(-1, 3)),
                     Value::str(rng.ident(6))};
    const Status status = engine.insert_row(txn, 0, row, costs);
    (void)status;  // duplicate PKs skipped; fine
  }
  ASSERT_TRUE(engine.commit(txn).is_ok());
  const TableDef& def = engine.schema().table(0);

  const char* columns[] = {"star_id", "field", "mag", "color"};
  for (int trial = 0; trial < 40; ++trial) {
    QuerySpec spec;
    spec.table = "stars";
    const int64_t n_conditions = rng.uniform_int(0, 3);
    for (int64_t c = 0; c < n_conditions; ++c) {
      Condition cond;
      cond.column = columns[rng.uniform_int(0, 3)];
      cond.op = static_cast<Condition::Op>(rng.uniform_int(0, 4));
      if (cond.column == "star_id") {
        cond.value = Value::i64(rng.uniform_int(0, 2000));
      } else if (cond.column == "field") {
        cond.value = Value::i32(static_cast<int32_t>(rng.uniform_int(0, 9)));
      } else {
        cond.value = Value::f64(rng.uniform_range(-1, 25));
      }
      spec.conditions.push_back(std::move(cond));
    }
    const auto result = planner.execute(spec);
    ASSERT_TRUE(result.is_ok());
    const auto brute = engine.live_view().scan_collect(0, [&](const Row& row) {
      for (const Condition& cond : spec.conditions) {
        const auto ok = condition_matches(def, cond, row);
        if (!ok.is_ok() || !*ok) return false;
      }
      return true;
    });
    EXPECT_EQ(result->rows.size(), brute.size())
        << "trial " << trial << " plan=" << result->plan;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryFuzz, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace sky::db
