// Smoke tests for the skyloader_tool CLI: generate -> lint -> verify ->
// load round trip against real files on disk, plus usage errors.
// The binary path is injected by CMake (SKYLOADER_TOOL_PATH).
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace {

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

CommandResult run_command(const std::string& command) {
  CommandResult result;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer;
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    result.output += buffer.data();
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

class ToolTest : public ::testing::Test {
 protected:
  ToolTest() : tool_(SKYLOADER_TOOL_PATH) {
    dir_ = std::filesystem::temp_directory_path() /
           ("skyloader_tool_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  ~ToolTest() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string tool_;
  std::filesystem::path dir_;
};

TEST_F(ToolTest, UsageOnNoCommand) {
  const auto result = run_command(tool_);
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("usage:"), std::string::npos);
}

TEST_F(ToolTest, GenerateLintVerifyLoadRoundTrip) {
  // generate: reference + 28 nightly files.
  const auto generate = run_command(
      tool_ + " generate --night 9 --megabytes 1 --seed 7 --out " +
      dir_.string());
  ASSERT_EQ(generate.exit_code, 0) << generate.output;
  EXPECT_NE(generate.output.find("reference.cat"), std::string::npos);
  int files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.path().extension() == ".cat") ++files;
  }
  EXPECT_EQ(files, 29);  // reference + 28

  // lint: clean files pass.
  const auto lint = run_command(
      tool_ + " lint " + (dir_ / "night9_file00.cat").string());
  EXPECT_EQ(lint.exit_code, 0) << lint.output;
  EXPECT_NE(lint.output.find("0 parse errors"), std::string::npos);

  // verify: loads everything into a throwaway repository, audits it.
  const auto verify = run_command(
      tool_ + " verify " + (dir_ / "*.cat").string());
  EXPECT_EQ(verify.exit_code, 0) << verify.output;
  EXPECT_NE(verify.output.find("integrity audit: OK"), std::string::npos);

  // load with a Markdown report.
  const auto report_path = dir_ / "report.md";
  const auto load = run_command(
      tool_ + " load --parallel 2 --report " + report_path.string() + " " +
      (dir_ / "*.cat").string());
  EXPECT_EQ(load.exit_code, 0) << load.output;
  std::ifstream report(report_path);
  ASSERT_TRUE(report.good());
  std::string contents((std::istreambuf_iterator<char>(report)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("# Load report"), std::string::npos);
  EXPECT_NE(contents.find("| objects |"), std::string::npos);
}

TEST_F(ToolTest, LintFlagsDirtyFile) {
  const auto path = dir_ / "dirty.cat";
  {
    std::ofstream out(path);
    out << "OBS|1|1|1|1|1|1000|1.2|0.5\n";
    out << "XXX|not|a|real|tag\n";
    out << "OBS|malformed\n";
  }
  const auto lint = run_command(tool_ + " lint " + path.string());
  EXPECT_NE(lint.exit_code, 0);
  EXPECT_NE(lint.output.find("2 parse errors"), std::string::npos);
}

TEST_F(ToolTest, VerifyFailsOnMissingFile) {
  const auto result = run_command(tool_ + " verify /no/such/file.cat");
  EXPECT_NE(result.exit_code, 0);
}

}  // namespace
