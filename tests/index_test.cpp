// Tests for the order-preserving key codec and the B+tree: unit behaviour,
// structural invariants, and randomized differential tests against std::map.
#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "index/bptree.h"
#include "index/key_codec.h"

namespace sky::index {
namespace {

std::string enc_i64(int64_t v) { return KeyEncoder().append_int64(v).take(); }
std::string enc_i32(int32_t v) { return KeyEncoder().append_int32(v).take(); }
std::string enc_f64(double v) { return KeyEncoder().append_double(v).take(); }
std::string enc_str(std::string_view v) {
  return KeyEncoder().append_string(v).take();
}

// ------------------------------------------------------------- key codec ---

TEST(KeyCodecTest, Int64OrderPreserved) {
  const std::vector<int64_t> values = {
      std::numeric_limits<int64_t>::min(), -1000, -1, 0, 1, 42, 1000,
      std::numeric_limits<int64_t>::max()};
  for (size_t i = 1; i < values.size(); ++i) {
    EXPECT_LT(enc_i64(values[i - 1]), enc_i64(values[i]))
        << values[i - 1] << " vs " << values[i];
  }
}

TEST(KeyCodecTest, Int32OrderPreserved) {
  const std::vector<int32_t> values = {
      std::numeric_limits<int32_t>::min(), -7, 0, 7,
      std::numeric_limits<int32_t>::max()};
  for (size_t i = 1; i < values.size(); ++i) {
    EXPECT_LT(enc_i32(values[i - 1]), enc_i32(values[i]));
  }
}

TEST(KeyCodecTest, DoubleOrderPreserved) {
  const std::vector<double> values = {
      -std::numeric_limits<double>::infinity(), -1e300, -2.5, -1e-300,
      0.0, 1e-300, 1.0, 2.5, 1e300,
      std::numeric_limits<double>::infinity()};
  for (size_t i = 1; i < values.size(); ++i) {
    EXPECT_LT(enc_f64(values[i - 1]), enc_f64(values[i]))
        << values[i - 1] << " vs " << values[i];
  }
}

TEST(KeyCodecTest, StringOrderPreservedIncludingEmbeddedNul) {
  const std::vector<std::string> values = {
      std::string(), std::string("\0", 1), std::string("\0a", 2), "a",
      std::string("a\0", 2), std::string("a\0b", 3), "ab", "b"};
  for (size_t i = 1; i < values.size(); ++i) {
    EXPECT_LT(enc_str(values[i - 1]), enc_str(values[i])) << i;
  }
}

TEST(KeyCodecTest, NullSortsBeforeValues) {
  const std::string null_key = KeyEncoder().append_null().take();
  EXPECT_LT(null_key, enc_i64(std::numeric_limits<int64_t>::min()));
  EXPECT_LT(null_key, enc_f64(-std::numeric_limits<double>::infinity()));
  EXPECT_LT(null_key, enc_str(""));
}

TEST(KeyCodecTest, CompositeOrderIsFieldMajor) {
  auto make = [](int64_t a, double b) {
    return KeyEncoder().append_int64(a).append_double(b).take();
  };
  EXPECT_LT(make(1, 9.0), make(2, 0.0));
  EXPECT_LT(make(2, 0.0), make(2, 1.0));
  EXPECT_LT(make(-5, 100.0), make(0, -100.0));
}

TEST(KeyCodecTest, StringNotPrefixOfLonger) {
  // "a" vs "ab" as *first* field; with a second field appended after "a",
  // ordering must still be decided by the first field alone.
  const std::string k1 = KeyEncoder().append_string("a").append_int64(
      std::numeric_limits<int64_t>::max()).take();
  const std::string k2 = KeyEncoder().append_string("ab").append_int64(
      std::numeric_limits<int64_t>::min()).take();
  EXPECT_LT(k1, k2);
}

TEST(KeyCodecTest, RoundTripInt64) {
  for (int64_t v : {std::numeric_limits<int64_t>::min(), int64_t{-42},
                    int64_t{0}, int64_t{7}, std::numeric_limits<int64_t>::max()}) {
    KeyDecoder dec(enc_i64(v));
    const auto decoded = dec.decode_int64();
    ASSERT_TRUE(decoded.is_ok());
    ASSERT_TRUE(decoded->has_value());
    EXPECT_EQ(**decoded, v);
    EXPECT_TRUE(dec.at_end());
  }
}

TEST(KeyCodecTest, RoundTripDouble) {
  for (double v : {-1e300, -2.5, 0.0, 3.25, 1e300}) {
    KeyDecoder dec(enc_f64(v));
    const auto decoded = dec.decode_double();
    ASSERT_TRUE(decoded.is_ok());
    ASSERT_TRUE(decoded->has_value());
    EXPECT_DOUBLE_EQ(**decoded, v);
  }
}

TEST(KeyCodecTest, RoundTripString) {
  for (const std::string& v :
       {std::string(""), std::string("hello"), std::string("a\0b", 3),
        std::string("\0\0", 2)}) {
    KeyDecoder dec(enc_str(v));
    const auto decoded = dec.decode_string();
    ASSERT_TRUE(decoded.is_ok());
    ASSERT_TRUE(decoded->has_value());
    EXPECT_EQ(**decoded, v);
    EXPECT_TRUE(dec.at_end());
  }
}

TEST(KeyCodecTest, RoundTripNullAndComposite) {
  const std::string key = KeyEncoder()
                              .append_null()
                              .append_int32(-9)
                              .append_string("x")
                              .take();
  KeyDecoder dec(key);
  const auto f1 = dec.decode_int64();  // NULL decodes under any type
  ASSERT_TRUE(f1.is_ok());
  EXPECT_FALSE(f1->has_value());
  const auto f2 = dec.decode_int32();
  ASSERT_TRUE(f2.is_ok());
  EXPECT_EQ(**f2, -9);
  const auto f3 = dec.decode_string();
  ASSERT_TRUE(f3.is_ok());
  EXPECT_EQ(**f3, "x");
  EXPECT_TRUE(dec.at_end());
}

TEST(KeyCodecTest, DecoderRejectsTruncation) {
  const std::string key = enc_i64(5);
  KeyDecoder dec(key.substr(0, key.size() - 2));
  EXPECT_FALSE(dec.decode_int64().is_ok());
  KeyDecoder empty(std::string_view{});
  EXPECT_FALSE(empty.decode_int32().is_ok());
}

// Property: encoding order equals value order for random int64/double pairs.
class KeyCodecOrderProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KeyCodecOrderProperty, RandomInt64PairsOrdered) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const int64_t a = static_cast<int64_t>(rng.next_u64());
    const int64_t b = static_cast<int64_t>(rng.next_u64());
    EXPECT_EQ(a < b, enc_i64(a) < enc_i64(b));
    EXPECT_EQ(a == b, enc_i64(a) == enc_i64(b));
  }
}

TEST_P(KeyCodecOrderProperty, RandomDoublePairsOrdered) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const double a = rng.normal(0, 1e6);
    const double b = rng.normal(0, 1e6);
    EXPECT_EQ(a < b, enc_f64(a) < enc_f64(b)) << a << " " << b;
  }
}

TEST_P(KeyCodecOrderProperty, RandomStringPairsOrdered) {
  Rng rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    std::string a, b;
    const char alphabet[] = {'\x00', 'a', 'b', '\xff'};
    for (int64_t k = rng.uniform_int(0, 6); k > 0; --k) {
      a.push_back(alphabet[rng.uniform_int(0, 3)]);
    }
    for (int64_t k = rng.uniform_int(0, 6); k > 0; --k) {
      b.push_back(alphabet[rng.uniform_int(0, 3)]);
    }
    EXPECT_EQ(a < b, enc_str(a) < enc_str(b));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KeyCodecOrderProperty,
                         ::testing::Values(11, 22, 33, 44));

// ---------------------------------------------------------------- B+tree ---

TEST(BPlusTreeTest, EmptyTree) {
  BPlusTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_FALSE(tree.contains("x"));
  EXPECT_FALSE(tree.lookup("x").has_value());
  EXPECT_FALSE(tree.begin().valid());
  EXPECT_TRUE(tree.validate().is_ok());
}

TEST(BPlusTreeTest, InsertAndLookup) {
  BPlusTree tree;
  ASSERT_TRUE(tree.insert("b", 2).is_ok());
  ASSERT_TRUE(tree.insert("a", 1).is_ok());
  ASSERT_TRUE(tree.insert("c", 3).is_ok());
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(tree.lookup("a").value(), 1u);
  EXPECT_EQ(tree.lookup("b").value(), 2u);
  EXPECT_EQ(tree.lookup("c").value(), 3u);
  EXPECT_FALSE(tree.lookup("d").has_value());
  EXPECT_TRUE(tree.validate().is_ok());
}

TEST(BPlusTreeTest, DuplicateInsertRejected) {
  BPlusTree tree;
  ASSERT_TRUE(tree.insert("k", 1).is_ok());
  const Status dup = tree.insert("k", 2);
  EXPECT_EQ(dup.code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.lookup("k").value(), 1u);
}

TEST(BPlusTreeTest, SplitsGrowHeight) {
  BPlusTree tree(4);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree.insert(enc_i64(i), static_cast<uint64_t>(i)).is_ok());
  }
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_GT(tree.height(), 2);
  EXPECT_TRUE(tree.validate().is_ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(tree.lookup(enc_i64(i)).value(), static_cast<uint64_t>(i));
  }
}

TEST(BPlusTreeTest, ReverseInsertionOrder) {
  BPlusTree tree(4);
  for (int i = 99; i >= 0; --i) {
    ASSERT_TRUE(tree.insert(enc_i64(i), static_cast<uint64_t>(i)).is_ok());
  }
  EXPECT_TRUE(tree.validate().is_ok());
  // In-order iteration yields sorted keys.
  int expected = 0;
  for (auto it = tree.begin(); it.valid(); it.next()) {
    EXPECT_EQ(it.key(), enc_i64(expected));
    ++expected;
  }
  EXPECT_EQ(expected, 100);
}

TEST(BPlusTreeTest, SeekFindsFirstGreaterOrEqual) {
  BPlusTree tree;
  for (int i = 0; i < 50; i += 10) {
    ASSERT_TRUE(tree.insert(enc_i64(i), static_cast<uint64_t>(i)).is_ok());
  }
  auto it = tree.seek(enc_i64(15));
  ASSERT_TRUE(it.valid());
  EXPECT_EQ(it.value(), 20u);
  it = tree.seek(enc_i64(40));
  ASSERT_TRUE(it.valid());
  EXPECT_EQ(it.value(), 40u);
  it = tree.seek(enc_i64(41));
  EXPECT_FALSE(it.valid());
}

TEST(BPlusTreeTest, RangeLookupHalfOpen) {
  BPlusTree tree;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree.insert(enc_i64(i), static_cast<uint64_t>(i)).is_ok());
  }
  const auto hits = tree.range_lookup(enc_i64(10), enc_i64(20));
  ASSERT_EQ(hits.size(), 10u);
  EXPECT_EQ(hits.front(), 10u);
  EXPECT_EQ(hits.back(), 19u);
}

TEST(BPlusTreeTest, PrefixLookupForNonUniqueEmulation) {
  // Non-unique secondary index: key = attribute || rowid.
  BPlusTree tree;
  for (uint64_t row = 0; row < 30; ++row) {
    const int64_t attr = static_cast<int64_t>(row % 3);
    const std::string key = KeyEncoder()
                                .append_int64(attr)
                                .append_int64(static_cast<int64_t>(row))
                                .take();
    ASSERT_TRUE(tree.insert(key, row).is_ok());
  }
  const auto hits = tree.prefix_lookup(enc_i64(1));
  EXPECT_EQ(hits.size(), 10u);
  for (uint64_t row : hits) EXPECT_EQ(row % 3, 1u);
}

TEST(BPlusTreeTest, EraseRemovesAndIterationSkips) {
  BPlusTree tree(4);
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(tree.insert(enc_i64(i), static_cast<uint64_t>(i)).is_ok());
  }
  for (int i = 0; i < 60; i += 2) {
    EXPECT_TRUE(tree.erase(enc_i64(i)));
  }
  EXPECT_FALSE(tree.erase(enc_i64(0)));  // already gone
  EXPECT_EQ(tree.size(), 30u);
  EXPECT_TRUE(tree.validate().is_ok());
  int expected = 1;
  for (auto it = tree.begin(); it.valid(); it.next()) {
    EXPECT_EQ(it.key(), enc_i64(expected));
    expected += 2;
  }
  EXPECT_EQ(expected, 61);
}

TEST(BPlusTreeTest, EraseEverything) {
  BPlusTree tree(4);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(tree.insert(enc_i64(i), static_cast<uint64_t>(i)).is_ok());
  }
  for (int i = 0; i < 40; ++i) EXPECT_TRUE(tree.erase(enc_i64(i)));
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_FALSE(tree.begin().valid());
  EXPECT_TRUE(tree.validate().is_ok());
  // Tree is still usable after full drain.
  ASSERT_TRUE(tree.insert("again", 7).is_ok());
  EXPECT_EQ(tree.lookup("again").value(), 7u);
}

TEST(BPlusTreeTest, BulkBuildMatchesIncremental) {
  std::vector<std::pair<std::string, uint64_t>> sorted;
  for (int i = 0; i < 1000; ++i) {
    sorted.emplace_back(enc_i64(i * 3), static_cast<uint64_t>(i));
  }
  BPlusTree bulk(16);
  ASSERT_TRUE(bulk.bulk_build(sorted).is_ok());
  EXPECT_EQ(bulk.size(), 1000u);
  EXPECT_TRUE(bulk.validate().is_ok());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(bulk.lookup(enc_i64(i * 3)).value(), static_cast<uint64_t>(i));
    EXPECT_FALSE(bulk.contains(enc_i64(i * 3 + 1)));
  }
  // Insertions after bulk build keep working.
  ASSERT_TRUE(bulk.insert(enc_i64(1), 9999).is_ok());
  EXPECT_TRUE(bulk.validate().is_ok());
  EXPECT_EQ(bulk.size(), 1001u);
}

TEST(BPlusTreeTest, BulkBuildRejectsUnsorted) {
  BPlusTree tree;
  EXPECT_FALSE(tree.bulk_build({{"b", 1}, {"a", 2}}).is_ok());
  EXPECT_FALSE(tree.bulk_build({{"a", 1}, {"a", 2}}).is_ok());
}

TEST(BPlusTreeTest, BulkBuildEmpty) {
  BPlusTree tree;
  ASSERT_TRUE(tree.insert("x", 1).is_ok());
  ASSERT_TRUE(tree.bulk_build({}).is_ok());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_FALSE(tree.contains("x"));
  EXPECT_TRUE(tree.validate().is_ok());
}

TEST(BPlusTreeTest, MoveSemantics) {
  BPlusTree tree;
  ASSERT_TRUE(tree.insert("k", 5).is_ok());
  BPlusTree moved = std::move(tree);
  EXPECT_EQ(moved.lookup("k").value(), 5u);
}

TEST(BPlusTreeTest, ApproxBytesTracksGrowth) {
  BPlusTree tree;
  EXPECT_EQ(tree.approx_bytes(), 0u);
  ASSERT_TRUE(tree.insert("abcd", 1).is_ok());
  const size_t after_one = tree.approx_bytes();
  EXPECT_GT(after_one, 0u);
  ASSERT_TRUE(tree.insert("efgh", 2).is_ok());
  EXPECT_GT(tree.approx_bytes(), after_one);
  tree.erase("abcd");
  EXPECT_LT(tree.approx_bytes(), after_one * 2);
}

// Differential property test: random interleavings of insert/erase/lookup
// against std::map, then full iteration comparison and validate().
struct TreeFuzzParams {
  uint64_t seed;
  int fanout;
  int operations;
};

class BPlusTreeFuzz : public ::testing::TestWithParam<TreeFuzzParams> {};

TEST_P(BPlusTreeFuzz, MatchesReferenceMap) {
  const auto& params = GetParam();
  Rng rng(params.seed);
  BPlusTree tree(params.fanout);
  std::map<std::string, uint64_t> reference;

  for (int op = 0; op < params.operations; ++op) {
    const int64_t key_int = rng.uniform_int(0, 500);
    const std::string key = enc_i64(key_int);
    const double action = rng.uniform();
    if (action < 0.6) {
      const uint64_t value = rng.next_u64();
      const Status status = tree.insert(key, value);
      if (reference.count(key) > 0) {
        EXPECT_EQ(status.code(), ErrorCode::kAlreadyExists);
      } else {
        EXPECT_TRUE(status.is_ok());
        reference[key] = value;
      }
    } else if (action < 0.8) {
      const bool erased = tree.erase(key);
      EXPECT_EQ(erased, reference.erase(key) > 0);
    } else {
      const auto found = tree.lookup(key);
      const auto it = reference.find(key);
      if (it == reference.end()) {
        EXPECT_FALSE(found.has_value());
      } else {
        ASSERT_TRUE(found.has_value());
        EXPECT_EQ(*found, it->second);
      }
    }
  }

  EXPECT_EQ(tree.size(), reference.size());
  ASSERT_TRUE(tree.validate().is_ok()) << tree.validate().to_string();
  auto it = tree.begin();
  for (const auto& [key, value] : reference) {
    ASSERT_TRUE(it.valid());
    EXPECT_EQ(it.key(), key);
    EXPECT_EQ(it.value(), value);
    it.next();
  }
  EXPECT_FALSE(it.valid());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BPlusTreeFuzz,
    ::testing::Values(TreeFuzzParams{1, 4, 3000}, TreeFuzzParams{2, 4, 3000},
                      TreeFuzzParams{3, 8, 5000}, TreeFuzzParams{4, 16, 5000},
                      TreeFuzzParams{5, 64, 8000},
                      TreeFuzzParams{6, 5, 4000}));

// Large sequential load exercising many levels.
TEST(BPlusTreeTest, LargeSequentialLoad) {
  BPlusTree tree(8);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(tree.insert(enc_i64(i), static_cast<uint64_t>(i)).is_ok());
  }
  EXPECT_EQ(tree.size(), static_cast<size_t>(n));
  EXPECT_GE(tree.height(), 4);
  EXPECT_TRUE(tree.validate().is_ok());
  const auto all = tree.range_lookup(enc_i64(0), enc_i64(n));
  EXPECT_EQ(all.size(), static_cast<size_t>(n));
}

// ------------------------------------------------------ sorted-run insert ---

std::vector<std::pair<std::string, uint64_t>> make_run(
    std::initializer_list<int64_t> keys) {
  std::vector<std::pair<std::string, uint64_t>> run;
  for (int64_t k : keys) run.emplace_back(enc_i64(k), static_cast<uint64_t>(k));
  return run;
}

TEST(BPlusTreeTest, SortedRunIntoEmptyTreeMatchesLoopInsert) {
  BPlusTree batch(4), loop(4);
  std::vector<std::pair<std::string, uint64_t>> run;
  for (int i = 0; i < 500; ++i) {
    run.emplace_back(enc_i64(i), static_cast<uint64_t>(i * 10));
    ASSERT_TRUE(loop.insert(enc_i64(i), static_cast<uint64_t>(i * 10)).is_ok());
  }
  ASSERT_TRUE(batch.insert_sorted_run(std::move(run)).is_ok());
  EXPECT_TRUE(batch.validate().is_ok());
  EXPECT_EQ(batch.size(), loop.size());
  // Identical iteration order and payloads.
  auto a = batch.begin();
  auto b = loop.begin();
  while (a.valid() && b.valid()) {
    EXPECT_EQ(a.key(), b.key());
    EXPECT_EQ(a.value(), b.value());
    a.next();
    b.next();
  }
  EXPECT_FALSE(a.valid());
  EXPECT_FALSE(b.valid());
}

TEST(BPlusTreeTest, SortedRunInterleavesWithExistingKeys) {
  BPlusTree batch(4), loop(4);
  for (int i = 0; i < 300; i += 2) {  // evens pre-loaded in both trees
    ASSERT_TRUE(batch.insert(enc_i64(i), static_cast<uint64_t>(i)).is_ok());
    ASSERT_TRUE(loop.insert(enc_i64(i), static_cast<uint64_t>(i)).is_ok());
  }
  std::vector<std::pair<std::string, uint64_t>> odds;
  for (int i = 1; i < 300; i += 2) {
    odds.emplace_back(enc_i64(i), static_cast<uint64_t>(i));
    ASSERT_TRUE(loop.insert(enc_i64(i), static_cast<uint64_t>(i)).is_ok());
  }
  BPlusTree::RunTouch touch;
  ASSERT_TRUE(batch.insert_sorted_run(std::move(odds), &touch).is_ok());
  EXPECT_TRUE(batch.validate().is_ok());
  EXPECT_EQ(batch.size(), loop.size());
  EXPECT_GT(touch.nodes_visited, 0);
  EXPECT_FALSE(touch.touched_leaf_ids.empty());
  auto a = batch.begin();
  auto b = loop.begin();
  while (a.valid() && b.valid()) {
    EXPECT_EQ(a.key(), b.key());
    EXPECT_EQ(a.value(), b.value());
    a.next();
    b.next();
  }
  EXPECT_FALSE(a.valid());
  EXPECT_FALSE(b.valid());
}

TEST(BPlusTreeTest, SortedRunSharesDescentAcrossTheRun) {
  // The point of the batch build: N keys cost ~one descent plus the touched
  // leaves, not N root-to-leaf descents.
  BPlusTree tree(4);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(tree.insert(enc_i64(i * 3), static_cast<uint64_t>(i)).is_ok());
  }
  std::vector<std::pair<std::string, uint64_t>> run;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    run.emplace_back(enc_i64(10000 + i * 3 + 1), static_cast<uint64_t>(i));
  }
  BPlusTree::RunTouch touch;
  ASSERT_TRUE(tree.insert_sorted_run(std::move(run), &touch).is_ok());
  EXPECT_TRUE(tree.validate().is_ok());
  // Far fewer nodes visited than n descents of the tree's height would cost.
  EXPECT_LT(touch.nodes_visited, n * tree.height() / 4);
}

TEST(BPlusTreeTest, SortedRunRejectsUnsortedInputUnmodified) {
  BPlusTree tree(4);
  ASSERT_TRUE(tree.insert_sorted_run(make_run({1, 2, 3})).is_ok());
  const Status bad = tree.insert_sorted_run(make_run({10, 9}));
  EXPECT_EQ(bad.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_TRUE(tree.validate().is_ok());
  EXPECT_FALSE(tree.contains(enc_i64(10)));
}

TEST(BPlusTreeTest, SortedRunDuplicateAgainstTreeReported) {
  BPlusTree tree(4);
  ASSERT_TRUE(tree.insert_sorted_run(make_run({1, 5, 9})).is_ok());
  const Status dup = tree.insert_sorted_run(make_run({4, 5, 6}));
  EXPECT_EQ(dup.code(), ErrorCode::kAlreadyExists);
  // Structurally valid either way (the engine treats this as a logic error
  // screened out before the latched publish).
  EXPECT_TRUE(tree.validate().is_ok());
}

TEST(BPlusTreeTest, SortedRunDuplicateWithinRunReported) {
  BPlusTree tree(4);
  const Status dup = tree.insert_sorted_run(make_run({7, 7}));
  EXPECT_EQ(dup.code(), ErrorCode::kInvalidArgument);
  EXPECT_TRUE(tree.validate().is_ok());
}

TEST(BPlusTreeTest, SortedRunEmptyIsANoOp) {
  BPlusTree tree(4);
  ASSERT_TRUE(tree.insert(enc_i64(1), 1).is_ok());
  ASSERT_TRUE(tree.insert_sorted_run({}).is_ok());
  EXPECT_EQ(tree.size(), 2u - 1u);
  EXPECT_TRUE(tree.validate().is_ok());
}

}  // namespace
}  // namespace sky::index
