// Tests for the storage substrate: heap files, the buffer-cache / DBWR
// model, the write-ahead log, and the device layout mapping.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "storage/buffer_cache.h"
#include "storage/device.h"
#include "storage/heap_file.h"
#include "storage/wal.h"

namespace sky::storage {
namespace {

// -------------------------------------------------------------- HeapFile ---

TEST(HeapFileTest, AppendAndRead) {
  HeapFile heap;
  const auto r1 = heap.append("row-one");
  const auto r2 = heap.append("row-two");
  EXPECT_TRUE(r1.opened_new_page);
  EXPECT_FALSE(r2.opened_new_page);
  EXPECT_EQ(heap.row_count(), 2);
  EXPECT_EQ(heap.read(r1.slot).value(), "row-one");
  EXPECT_EQ(heap.read(r2.slot).value(), "row-two");
}

TEST(HeapFileTest, PageBoundaryOpensNewPage) {
  HeapFile heap;
  const std::string big(kPageSize / 2 + 100, 'x');
  const auto r1 = heap.append(big);
  const auto r2 = heap.append(big);  // does not fit in page 0
  EXPECT_TRUE(r2.opened_new_page);
  EXPECT_EQ(heap.page_count(), 2);
  EXPECT_EQ(r1.slot.page, 0u);
  EXPECT_EQ(r2.slot.page, 1u);
}

TEST(HeapFileTest, ReadErrors) {
  HeapFile heap;
  EXPECT_FALSE(heap.read(SlotId{0, 0, 0}).is_ok());
  heap.append("x");
  EXPECT_FALSE(heap.read(SlotId{0, 0, 5}).is_ok());  // bad slot
  EXPECT_FALSE(heap.read(SlotId{0, 9, 0}).is_ok());  // bad page
  EXPECT_FALSE(heap.read(SlotId{3, 0, 0}).is_ok());  // wrong extent
}

TEST(HeapFileTest, PendingRowsAreHiddenUntilPublished) {
  HeapFile heap;
  const auto visible = heap.append("live");
  const auto hidden = heap.append_pending("pending");
  // Pending rows occupy page space but are invisible everywhere.
  EXPECT_EQ(heap.row_count(), 1);
  EXPECT_EQ(heap.total_bytes(), 4);
  EXPECT_FALSE(heap.read(hidden.slot).is_ok());
  int scanned = 0;
  heap.scan([&](SlotId, std::string_view) { ++scanned; });
  EXPECT_EQ(scanned, 1);
  ASSERT_TRUE(heap.publish(hidden.slot).is_ok());
  EXPECT_EQ(heap.row_count(), 2);
  EXPECT_EQ(heap.read(hidden.slot).value(), "pending");
  // Publishing twice (or publishing a live row) is a state error.
  EXPECT_FALSE(heap.publish(hidden.slot).is_ok());
  EXPECT_FALSE(heap.publish(visible.slot).is_ok());
}

TEST(HeapFileTest, DiscardAbandonsPendingRow) {
  HeapFile heap;
  const auto pending = heap.append_pending("abandoned");
  ASSERT_TRUE(heap.discard(pending.slot).is_ok());
  EXPECT_EQ(heap.row_count(), 0);
  EXPECT_FALSE(heap.read(pending.slot).is_ok());
  // A discarded slot cannot come back.
  EXPECT_FALSE(heap.publish(pending.slot).is_ok());
  EXPECT_FALSE(heap.discard(pending.slot).is_ok());
  // The hole still consumes page bytes; the next append lands after it.
  const auto next = heap.append("after");
  EXPECT_EQ(next.slot.page, pending.slot.page);
  EXPECT_EQ(next.slot.slot, pending.slot.slot + 1);
}

TEST(HeapFileTest, ViewsStayValidAcrossPageGrowth) {
  // Regression: read() returns a view into row storage; appending enough
  // rows to open many new pages must not invalidate previously returned
  // views (pages and rows live in chunk-stable deques).
  HeapFile heap;
  const auto first = heap.append("stable-row-zero");
  const std::string_view view = heap.read(first.slot).value();
  const std::string big(kPageSize / 3, 'f');
  for (int i = 0; i < 500; ++i) heap.append(big);
  ASSERT_GT(heap.page_count(), 100);
  EXPECT_EQ(view, "stable-row-zero");
  EXPECT_EQ(heap.read(first.slot).value().data(), view.data());
}

TEST(HeapFileTest, TombstoneHidesRow) {
  HeapFile heap;
  const auto r = heap.append("doomed");
  ASSERT_TRUE(heap.mark_deleted(r.slot).is_ok());
  EXPECT_FALSE(heap.read(r.slot).is_ok());
  EXPECT_EQ(heap.row_count(), 0);
  // Double-delete is an error.
  EXPECT_FALSE(heap.mark_deleted(r.slot).is_ok());
}

TEST(HeapFileTest, ScanVisitsLiveRowsInOrder) {
  HeapFile heap;
  std::vector<SlotId> slots;
  for (int i = 0; i < 100; ++i) {
    slots.push_back(heap.append("row" + std::to_string(i)).slot);
  }
  ASSERT_TRUE(heap.mark_deleted(slots[10]).is_ok());
  ASSERT_TRUE(heap.mark_deleted(slots[50]).is_ok());
  std::vector<std::string> seen;
  heap.scan([&](SlotId, std::string_view row) {
    seen.emplace_back(row);
  });
  EXPECT_EQ(seen.size(), 98u);
  EXPECT_EQ(seen.front(), "row0");
  EXPECT_EQ(seen.back(), "row99");
  for (const auto& row : seen) {
    EXPECT_NE(row, "row10");
    EXPECT_NE(row, "row50");
  }
}

TEST(HeapFileTest, TotalBytesTracksLiveData) {
  HeapFile heap;
  const auto r = heap.append("abcde");
  heap.append("xy");
  EXPECT_EQ(heap.total_bytes(), 7);
  ASSERT_TRUE(heap.mark_deleted(r.slot).is_ok());
  EXPECT_EQ(heap.total_bytes(), 2);
}

// ----------------------------------------------------------- BufferCache ---

TEST(BufferCacheTest, HitsAndMisses) {
  BufferCache cache(/*capacity_pages=*/4, /*dirty_trigger=*/1000);
  cache.touch_read({1, 0});
  cache.touch_read({1, 0});
  cache.touch_read({1, 1});
  EXPECT_EQ(cache.events().misses, 2);
  EXPECT_EQ(cache.events().hits, 1);
  EXPECT_EQ(cache.resident(), 2);
}

TEST(BufferCacheTest, LruEviction) {
  BufferCache cache(2, 1000);
  cache.touch_read({1, 0});
  cache.touch_read({1, 1});
  cache.touch_read({1, 0});  // 0 becomes MRU
  cache.touch_read({1, 2});  // evicts 1 (LRU)
  EXPECT_EQ(cache.events().clean_evictions, 1);
  cache.touch_read({1, 0});  // still resident -> hit
  EXPECT_EQ(cache.events().hits, 2);
  cache.touch_read({1, 1});  // was evicted -> miss
  EXPECT_EQ(cache.events().misses, 4);
}

TEST(BufferCacheTest, DirtyEvictionCountsAsWrite) {
  BufferCache cache(2, 1000);
  cache.touch_write({1, 0});
  cache.touch_write({1, 1});
  cache.touch_read({1, 2});  // evicts dirty page 0
  EXPECT_EQ(cache.events().dirty_evictions, 1);
  EXPECT_EQ(cache.dirty(), 1);
}

TEST(BufferCacheTest, WriterWakesAtDirtyTrigger) {
  BufferCache cache(/*capacity_pages=*/100, /*dirty_trigger=*/10);
  for (uint32_t p = 0; p < 9; ++p) cache.touch_write({1, p});
  EXPECT_EQ(cache.events().writer_wakes, 0);
  cache.touch_write({1, 9});
  EXPECT_EQ(cache.events().writer_wakes, 1);
  EXPECT_EQ(cache.events().writer_flushed_pages, 10);
  EXPECT_EQ(cache.dirty(), 0);
}

TEST(BufferCacheTest, WriterScanCostGrowsWithCacheSize) {
  // The section 4.5.5 mechanism: identical workload, bigger cache =>
  // more frames scanned by the writer in total.
  auto scanned_frames = [](int64_t capacity) {
    BufferCache cache(capacity, /*dirty_trigger=*/32);
    Rng rng(99);
    // Warm the cache with reads so frames exist to be scanned, then dirty
    // pages at a fixed rate.
    for (int i = 0; i < 5000; ++i) {
      const auto page = static_cast<uint32_t>(rng.uniform_int(0, 4999));
      cache.touch_read({1, page});
    }
    for (int i = 0; i < 2000; ++i) {
      const auto page = static_cast<uint32_t>(rng.uniform_int(0, 4999));
      cache.touch_write({2, page});
    }
    return cache.events().writer_scanned_frames;
  };
  EXPECT_GT(scanned_frames(4096), scanned_frames(512));
}

TEST(BufferCacheTest, RedirtyBeforeWakeCountsOnce) {
  BufferCache cache(100, 10);
  for (int i = 0; i < 20; ++i) cache.touch_write({1, 0});  // same page
  EXPECT_EQ(cache.dirty(), 1);
  EXPECT_EQ(cache.events().writer_wakes, 0);
}

TEST(BufferCacheTest, FlushAllDrainsDirty) {
  BufferCache cache(100, 1000);
  for (uint32_t p = 0; p < 7; ++p) cache.touch_write({1, p});
  EXPECT_EQ(cache.dirty(), 7);
  cache.flush_all();
  EXPECT_EQ(cache.dirty(), 0);
  EXPECT_EQ(cache.events().writer_flushed_pages, 7);
  // Flush with nothing dirty is a no-op.
  const auto wakes = cache.events().writer_wakes;
  cache.flush_all();
  EXPECT_EQ(cache.events().writer_wakes, wakes);
}

TEST(BufferCacheTest, EventDeltas) {
  BufferCache cache(10, 1000);
  cache.touch_read({1, 0});
  const CacheEvents baseline = cache.events();
  cache.touch_read({1, 0});
  cache.touch_read({1, 1});
  const CacheEvents delta = cache.events().since(baseline);
  EXPECT_EQ(delta.hits, 1);
  EXPECT_EQ(delta.misses, 1);
}

// ------------------------------------------------------------------- WAL ---

TEST(WalTest, AppendAccumulatesUnflushed) {
  WriteAheadLog wal;
  wal.append(WalRecordType::kInsert, 1, 5, std::string(100, 'r'));
  EXPECT_GT(wal.unflushed_bytes(), 100);
  EXPECT_EQ(wal.stats().records, 1);
  EXPECT_EQ(wal.stats().flushes, 0);
}

TEST(WalTest, FlushDrainsAndCounts) {
  WriteAheadLog wal;
  wal.append(WalRecordType::kInsert, 1, 5, "abc");
  wal.append(WalRecordType::kCommit, 1, 0, "");
  const WalFlushResult flushed = wal.flush();
  EXPECT_GT(flushed.bytes_flushed, 0);
  EXPECT_TRUE(flushed.led);
  EXPECT_FALSE(flushed.piggybacked);
  EXPECT_EQ(wal.unflushed_bytes(), 0);
  EXPECT_EQ(wal.stats().flushes, 1);
  EXPECT_EQ(wal.stats().bytes_flushed, flushed.bytes_flushed);
  // Idle flush is free.
  EXPECT_EQ(wal.flush().bytes_flushed, 0);
  EXPECT_EQ(wal.stats().flushes, 1);
}

TEST(WalTest, HighWaterMarkTracksBacklog) {
  WriteAheadLog wal;
  wal.append(WalRecordType::kInsert, 1, 1, std::string(1000, 'x'));
  const int64_t peak = wal.stats().max_unflushed_bytes;
  wal.flush();
  wal.append(WalRecordType::kInsert, 1, 1, "small");
  EXPECT_EQ(wal.stats().max_unflushed_bytes, peak);
}

TEST(WalTest, RetainedRecordsForReplay) {
  WalOptions options;
  options.retain_records = true;
  WriteAheadLog wal(options);
  wal.append(WalRecordType::kInsert, 7, 3, "payload");
  wal.append(WalRecordType::kCommit, 7, 0, "");
  ASSERT_EQ(wal.records().size(), 2u);
  EXPECT_EQ(wal.records()[0].type, WalRecordType::kInsert);
  EXPECT_EQ(wal.records()[0].txn_id, 7u);
  EXPECT_EQ(wal.records()[0].table_id, 3u);
  EXPECT_EQ(wal.records()[0].payload, "payload");
  EXPECT_EQ(wal.records()[1].type, WalRecordType::kCommit);
}

TEST(WalTest, RecordsNotRetainedByDefault) {
  WriteAheadLog wal;
  wal.append(WalRecordType::kInsert, 1, 1, "x");
  EXPECT_TRUE(wal.records().empty());
  EXPECT_EQ(wal.stats().records, 1);
}

TEST(WalTest, LsnWatermarkTracksFlushes) {
  WriteAheadLog wal;
  wal.append(WalRecordType::kInsert, 1, 1, "a");
  wal.append(WalRecordType::kCommit, 1, 0, "");
  EXPECT_EQ(wal.appended_lsn(), 2u);
  EXPECT_EQ(wal.durable_lsn(), 0u);
  wal.flush();
  EXPECT_EQ(wal.durable_lsn(), 2u);
}

TEST(WalTest, SingleTransactionSkipsCommitWindow) {
  WalOptions options;
  options.commit_window = kSecond;  // would hang the test if waited
  WriteAheadLog wal(options);
  wal.append(WalRecordType::kInsert, 1, 1, "a");
  wal.append(WalRecordType::kCommit, 1, 0, "");
  const WalFlushResult flushed = wal.flush();
  EXPECT_TRUE(flushed.led);
  EXPECT_EQ(flushed.leader_wait, 0);
  EXPECT_EQ(wal.stats().leader_wait_ns, 0);
  EXPECT_EQ(wal.stats().flushes, 1);
}

TEST(WalTest, ExpectGroupHintHoldsWindowForSingleTxnRegion) {
  WalOptions options;
  options.commit_window = 2 * kMillisecond;
  WriteAheadLog wal(options);
  // One transaction pending — the fast path would skip the window — but the
  // caller vouches that concurrent committers exist (the engine does this
  // when other transactions are live), so the leader holds it open anyway.
  wal.append(WalRecordType::kInsert, 1, 1, "a");
  wal.append(WalRecordType::kCommit, 1, 0, "");
  const WalFlushResult flushed = wal.flush(/*expect_group=*/true);
  EXPECT_TRUE(flushed.led);
  EXPECT_GT(flushed.leader_wait, 0);
  EXPECT_EQ(wal.stats().flushes, 1);
}

TEST(WalTest, CommitWindowExpiresWhenNobodyJoins) {
  WalOptions options;
  options.commit_window = 2 * kMillisecond;
  WriteAheadLog wal(options);
  // Two transactions in the pending region: the leader opens the window.
  wal.append(WalRecordType::kInsert, 1, 1, "a");
  wal.append(WalRecordType::kInsert, 2, 1, "b");
  wal.append(WalRecordType::kCommit, 1, 0, "");
  const WalFlushResult flushed = wal.flush();
  EXPECT_TRUE(flushed.led);
  EXPECT_GT(flushed.leader_wait, 0);  // waited the window out
  EXPECT_EQ(wal.stats().flushes, 1);
  EXPECT_EQ(wal.unflushed_bytes(), 0);
  EXPECT_EQ(wal.stats().group_size_hist[0], 1);  // one committer covered
}

TEST(WalTest, RelaxedModeAcksWithoutFlushing) {
  WalOptions options;
  options.durability = DurabilityMode::kRelaxed;
  WriteAheadLog wal(options);
  wal.append(WalRecordType::kInsert, 1, 1, "a");
  wal.append(WalRecordType::kCommit, 1, 0, "");
  const WalFlushResult acked = wal.flush();
  EXPECT_FALSE(acked.led);
  EXPECT_EQ(wal.stats().flushes, 0);
  EXPECT_EQ(wal.stats().relaxed_acks, 1);
  EXPECT_GT(wal.unflushed_bytes(), 0);
  EXPECT_EQ(wal.durable_lsn(), 0u);  // honest: nothing hit the device yet
  // sync() is the relaxed-mode checkpoint.
  EXPECT_GT(wal.sync(), 0);
  EXPECT_EQ(wal.durable_lsn(), wal.appended_lsn());
  EXPECT_EQ(wal.unflushed_bytes(), 0);
  EXPECT_EQ(wal.stats().flushes, 1);
}

// ---------------------------------------------------------- DeviceLayout ---

TEST(DeviceLayoutTest, SeparateRaidsIsolateRoles) {
  const auto layout = DeviceLayout::separate_raids();
  EXPECT_EQ(layout.physical_devices, 3);
  EXPECT_NE(layout.device_for(IoRole::kData), layout.device_for(IoRole::kLog));
  EXPECT_NE(layout.device_for(IoRole::kData),
            layout.device_for(IoRole::kIndex));
}

TEST(DeviceLayoutTest, SingleRaidSharesEverything) {
  const auto layout = DeviceLayout::single_raid();
  EXPECT_EQ(layout.physical_devices, 1);
  EXPECT_EQ(layout.device_for(IoRole::kData), layout.device_for(IoRole::kLog));
}

TEST(IoTallyTest, Accumulates) {
  IoTally a, b;
  a.add_write(IoRole::kData, 2);
  a.add_read(IoRole::kIndex, 1);
  b.add_write(IoRole::kData, 3);
  b.log_bytes_flushed = 100;
  a += b;
  EXPECT_EQ(a.pages_written[0], 5);
  EXPECT_EQ(a.pages_read[1], 1);
  EXPECT_EQ(a.log_bytes_flushed, 100);
}

}  // namespace
}  // namespace sky::storage
