// Coverage for the remaining loader-adjacent surfaces: file-based loading,
// non-bulk commit policy, report merging and rendering, tuning profile
// plumbing, row-id packing, and config file I/O.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "catalog/generator.h"
#include "catalog/pq_schema.h"
#include "client/session.h"
#include "core/bulk_loader.h"
#include "core/non_bulk_loader.h"
#include "core/tuning.h"
#include "db/engine.h"
#include "db/table.h"

namespace sky::core {
namespace {

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("skyloader_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::filesystem::path path(const std::string& name) const {
    return path_ / name;
  }

 private:
  std::filesystem::path path_;
};

TEST(LoadPathTest, LoadsFromDisk) {
  const db::Schema schema = catalog::make_pq_schema();
  db::Engine engine(schema);
  client::DirectSession session(engine);
  BulkLoaderOptions options;
  options.write_audit_row = false;
  BulkLoader loader(session, schema, options);

  TempDir dir;
  const auto ref_path = dir.path("reference.cat");
  {
    std::ofstream out(ref_path, std::ios::binary);
    out << catalog::CatalogGenerator::reference_file().text;
  }
  const auto report = loader.load_path(ref_path.string());
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_GT(report->rows_loaded, 0);
  EXPECT_EQ(report->total_skipped(), 0);
}

TEST(LoadPathTest, MissingFileIsIoError) {
  const db::Schema schema = catalog::make_pq_schema();
  db::Engine engine(schema);
  client::DirectSession session(engine);
  BulkLoader loader(session, schema, BulkLoaderOptions{});
  EXPECT_EQ(loader.load_path("/nonexistent/file.cat").status().code(),
            ErrorCode::kIoError);
}

TEST(NonBulkLoaderTest, CommitEveryRows) {
  const db::Schema schema = catalog::make_pq_schema();
  db::Engine engine(schema);
  client::DirectSession session(engine);
  {
    BulkLoaderOptions ref_options;
    ref_options.write_audit_row = false;
    BulkLoader ref(session, schema, ref_options);
    ASSERT_TRUE(ref.load_text("reference",
                              catalog::CatalogGenerator::reference_file().text)
                    .is_ok());
  }
  catalog::FileSpec spec;
  spec.seed = 71;
  spec.unit_id = 71;
  spec.target_bytes = 32 * 1024;
  const auto file = catalog::CatalogGenerator::generate(spec);
  NonBulkLoaderOptions options;
  options.commit.every_rows = 100;
  NonBulkLoader loader(session, schema, options);
  const auto report = loader.load_text("f.cat", file.text);
  ASSERT_TRUE(report.is_ok());
  EXPECT_GE(report->commits, report->rows_loaded / 100);
  EXPECT_EQ(report->rows_loaded, file.data_lines);
  EXPECT_GT(engine.wal_stats().flushes, 3);
}

TEST(LoadReportTest, MergeCountsAndSummary) {
  FileLoadReport a;
  a.file_name = "a";
  a.bytes = 100;
  a.rows_parsed = 10;
  a.rows_loaded = 8;
  a.rows_skipped_server = 2;
  a.loaded_per_table["objects"] = 8;
  a.db_calls = 3;
  FileLoadReport b;
  b.bytes = 200;
  b.rows_parsed = 20;
  b.parse_errors = 1;
  b.rows_loaded = 20;
  b.loaded_per_table["objects"] = 15;
  b.loaded_per_table["fingers"] = 5;
  a.merge_counts(b);
  EXPECT_EQ(a.bytes, 300);
  EXPECT_EQ(a.rows_loaded, 28);
  EXPECT_EQ(a.total_skipped(), 3);
  EXPECT_EQ(a.loaded_per_table["objects"], 23);
  EXPECT_EQ(a.loaded_per_table["fingers"], 5);
  const std::string summary = a.summary();
  EXPECT_NE(summary.find("28 rows loaded"), std::string::npos);
  EXPECT_NE(summary.find("3 skipped"), std::string::npos);
}

TEST(LoadReportTest, MarkdownRendering) {
  ParallelLoadReport report;
  report.workers = 2;
  report.makespan = 2 * kSecond;
  report.total_bytes = 4'000'000;
  report.total_rows_loaded = 1234;
  report.worker_busy = {kSecond, 2 * kSecond};
  report.files_per_worker = {1, 2};
  FileLoadReport file;
  file.file_name = "x.cat";
  file.loaded_per_table["objects"] = 1234;
  file.errors.push_back(LoadError{LoadError::Stage::kServer, "objects", 5,
                                  "(1, 2)",
                                  Status(ErrorCode::kConstraintPrimaryKey,
                                         "dup")});
  report.files.push_back(file);
  const std::string markdown = render_markdown_report(report);
  EXPECT_NE(markdown.find("# Load report"), std::string::npos);
  EXPECT_NE(markdown.find("| objects | 1234 |"), std::string::npos);
  EXPECT_NE(markdown.find("## Worker balance"), std::string::npos);
  EXPECT_NE(markdown.find("PRIMARY_KEY_VIOLATION"), std::string::npos);
  EXPECT_NE(markdown.find("2.00 MB/s"), std::string::npos);
}

TEST(TuningProfileTest, OptionMappings) {
  const TuningProfile production = TuningProfile::production();
  const auto engine_options = production.engine_options();
  EXPECT_EQ(engine_options.cache_pages, production.server_cache_pages);
  EXPECT_EQ(engine_options.device_layout.physical_devices, 3);
  const auto bulk = production.bulk_options();
  EXPECT_EQ(bulk.batch_size, 40);
  EXPECT_EQ(bulk.array_config.default_rows, 1000);
  EXPECT_EQ(bulk.commit.every_cycles, 0);

  const TuningProfile untuned = TuningProfile::untuned_2004();
  EXPECT_EQ(untuned.bulk_options().batch_size, 1);  // non-bulk => batch 1
  EXPECT_EQ(untuned.server_config().device_layout.physical_devices, 1);
}

TEST(RowIdTest, PackingRoundTrips) {
  using db::make_row_id;
  using db::row_id_slot;
  using db::row_id_table;
  const storage::SlotId slot{13, 123456, 789};
  const uint64_t row_id = make_row_id(42, slot);
  EXPECT_EQ(row_id_table(row_id), 42u);
  EXPECT_EQ(row_id_slot(row_id).extent, 13u);
  EXPECT_EQ(row_id_slot(row_id).page, 123456u);
  EXPECT_EQ(row_id_slot(row_id).slot, 789u);
  // Extremes: 12 table | 8 extent | 24 page | 20 slot bits.
  const storage::SlotId big{0xFFu, 0xFFFFFFu, 0xFFFFFu};
  const uint64_t max_id = make_row_id(0xFFF, big);
  EXPECT_EQ(max_id, ~0ull);
  EXPECT_EQ(row_id_table(max_id), 0xFFFu);
  EXPECT_EQ(row_id_slot(max_id).extent, 0xFFu);
  EXPECT_EQ(row_id_slot(max_id).page, 0xFFFFFFu);
  EXPECT_EQ(row_id_slot(max_id).slot, 0xFFFFFu);
}

TEST(ConfigFileTest, LoadFromDisk) {
  TempDir dir;
  const auto path = dir.path("skyloader.ini");
  {
    std::ofstream out(path);
    out << "[array_set]\ndefault_rows = 123\n";
  }
  const auto config = Config::load_file(path.string());
  ASSERT_TRUE(config.is_ok());
  EXPECT_EQ(config->get_int("array_set", "default_rows", -1), 123);
  EXPECT_EQ(Config::load_file("/no/such/file.ini").status().code(),
            ErrorCode::kIoError);
}

TEST(GeneratorTest, ReferenceFileIsDeterministic) {
  EXPECT_EQ(catalog::CatalogGenerator::reference_file().text,
            catalog::CatalogGenerator::reference_file().text);
}

}  // namespace
}  // namespace sky::core
