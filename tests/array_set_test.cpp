// ArraySet tests: on-demand array creation, capacity triggers, per-table
// config overrides, the memory high-water extension, and cycle teardown.
#include <gtest/gtest.h>

#include "core/array_set.h"

namespace sky::core {
namespace {

db::Schema tiny_schema() {
  db::Schema schema;
  for (const char* name : {"parents", "children", "grandchildren"}) {
    db::TableDef def;
    def.name = name;
    def.col("id", db::ColumnType::kInt64, false);
    def.col("payload", db::ColumnType::kString);
    def.primary_key = {"id"};
    EXPECT_TRUE(schema.add_table(def).is_ok());
  }
  return schema;
}

db::Row make_row(int64_t id, std::string payload = "x") {
  return {db::Value::i64(id), db::Value::str(std::move(payload))};
}

TEST(ArraySetTest, ArraysCreatedOnDemand) {
  const db::Schema schema = tiny_schema();
  ArraySet set(schema, ArraySet::Config{});
  EXPECT_EQ(set.active_arrays(), 0);
  set.append(1, make_row(1));
  EXPECT_EQ(set.active_arrays(), 1);
  set.append(0, make_row(2));
  EXPECT_EQ(set.active_arrays(), 2);
  set.append(1, make_row(3));
  EXPECT_EQ(set.active_arrays(), 2);
  EXPECT_EQ(set.buffered_rows(), 3);
}

TEST(ArraySetTest, FlushTriggersAtCapacity) {
  const db::Schema schema = tiny_schema();
  ArraySet::Config config;
  config.default_rows = 5;
  ArraySet set(schema, config);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(set.append(0, make_row(i)));
  }
  EXPECT_FALSE(set.should_flush());
  EXPECT_TRUE(set.append(0, make_row(4)));
  EXPECT_TRUE(set.should_flush());
}

TEST(ArraySetTest, PerTableCapacityOverride) {
  const db::Schema schema = tiny_schema();
  ArraySet::Config config;
  config.default_rows = 100;
  config.per_table_rows["children"] = 3;
  ArraySet set(schema, config);
  EXPECT_EQ(set.capacity_for(0), 100);
  EXPECT_EQ(set.capacity_for(1), 3);
  set.append(1, make_row(1));
  set.append(1, make_row(2));
  EXPECT_TRUE(set.append(1, make_row(3)));
}

TEST(ArraySetTest, HighWaterMarkTriggersFlush) {
  const db::Schema schema = tiny_schema();
  ArraySet::Config config;
  config.default_rows = 1'000'000;
  config.memory_high_water_bytes = 4096;
  ArraySet set(schema, config);
  bool triggered = false;
  for (int i = 0; i < 1000 && !triggered; ++i) {
    triggered = set.append(0, make_row(i, std::string(100, 'p')));
  }
  EXPECT_TRUE(triggered);
  EXPECT_GE(set.footprint_bytes(), 4096);
  EXPECT_LT(set.buffered_rows(), 1000);
}

TEST(ArraySetTest, TopoOrderIterationIsParentFirst) {
  const db::Schema schema = tiny_schema();
  ArraySet set(schema, ArraySet::Config{});
  set.append(2, make_row(30));  // grandchild buffered first
  set.append(0, make_row(10));
  set.append(1, make_row(20));
  std::vector<uint32_t> order;
  set.for_each_in_topo_order(
      [&](uint32_t table_id, const std::vector<db::Row>&) {
        order.push_back(table_id);
      });
  EXPECT_EQ(order, (std::vector<uint32_t>{0, 1, 2}));
}

TEST(ArraySetTest, ClearReleasesEverything) {
  const db::Schema schema = tiny_schema();
  ArraySet set(schema, ArraySet::Config{});
  for (int i = 0; i < 50; ++i) set.append(0, make_row(i));
  set.clear();
  EXPECT_EQ(set.buffered_rows(), 0);
  EXPECT_EQ(set.footprint_bytes(), 0);
  EXPECT_EQ(set.active_arrays(), 0);
  EXPECT_FALSE(set.should_flush());
  // Usable again after clear.
  set.append(1, make_row(1));
  EXPECT_EQ(set.buffered_rows(), 1);
}

TEST(ArraySetTest, ConfigFromFile) {
  const db::Schema schema = tiny_schema();
  const auto file = Config::parse(R"(
[array_set]
default_rows = 500
memory_high_water_bytes = 1048576
children = 2000
)");
  ASSERT_TRUE(file.is_ok());
  const auto config = ArraySet::Config::from_config(*file, schema);
  ASSERT_TRUE(config.is_ok());
  EXPECT_EQ(config->default_rows, 500);
  EXPECT_EQ(config->memory_high_water_bytes.value(), 1048576);
  EXPECT_EQ(config->per_table_rows.at("children"), 2000);
}

TEST(ArraySetTest, ConfigRejectsBadValues) {
  const db::Schema schema = tiny_schema();
  auto bad_table = Config::parse("[array_set]\nnonexistent = 10\n");
  ASSERT_TRUE(bad_table.is_ok());
  EXPECT_FALSE(ArraySet::Config::from_config(*bad_table, schema).is_ok());

  auto bad_rows = Config::parse("[array_set]\ndefault_rows = -5\n");
  ASSERT_TRUE(bad_rows.is_ok());
  EXPECT_FALSE(ArraySet::Config::from_config(*bad_rows, schema).is_ok());

  auto bad_hwm = Config::parse("[array_set]\nmemory_high_water_bytes = 0\n");
  ASSERT_TRUE(bad_hwm.is_ok());
  EXPECT_FALSE(ArraySet::Config::from_config(*bad_hwm, schema).is_ok());

  auto bad_per_table = Config::parse("[array_set]\nchildren = 0\n");
  ASSERT_TRUE(bad_per_table.is_ok());
  EXPECT_FALSE(ArraySet::Config::from_config(*bad_per_table, schema).is_ok());
}

// -------------------------------------------------------- columnar buffers ---

db::ColumnBatch make_batch(const db::Schema& schema, uint32_t table_id,
                           int64_t first_id, int rows) {
  db::ColumnBatch batch(schema.table(table_id));
  for (int i = 0; i < rows; ++i) {
    batch.push_i64(0, first_id + i);
    batch.push_str(1, "payload");
  }
  return batch;
}

TEST(ArraySetTest, AppendBatchMergesAndTriggersAtCapacity) {
  const db::Schema schema = tiny_schema();
  ArraySet::Config config;
  config.default_rows = 10;
  ArraySet set(schema, config);
  EXPECT_FALSE(set.append_batch(0, make_batch(schema, 0, 0, 4)));
  EXPECT_FALSE(set.append_batch(0, make_batch(schema, 0, 4, 4)));
  EXPECT_EQ(set.buffered_rows(), 8);
  EXPECT_EQ(set.active_arrays(), 1);
  EXPECT_GT(set.footprint_bytes(), 0);
  // Crossing the per-table capacity flips the flush flag.
  EXPECT_TRUE(set.append_batch(0, make_batch(schema, 0, 8, 4)));
  EXPECT_TRUE(set.should_flush());
  // The merged buffer holds every appended row, in order.
  int64_t seen = 0;
  set.for_each_batch_in_topo_order(
      [&](uint32_t table_id, const db::ColumnBatch& batch) {
        EXPECT_EQ(table_id, 0u);
        for (size_t r = 0; r < batch.size(); ++r) {
          EXPECT_EQ(batch.i64_at(r, 0), seen++);
        }
      });
  EXPECT_EQ(seen, 12);
}

TEST(ArraySetTest, AppendBatchHighWaterTriggersFlush) {
  const db::Schema schema = tiny_schema();
  ArraySet::Config config;
  config.default_rows = 1000000;
  config.memory_high_water_bytes = 256;
  ArraySet set(schema, config);
  bool flush = false;
  int64_t appended = 0;
  while (!flush && appended < 10000) {
    flush = set.append_batch(0, make_batch(schema, 0, appended, 8));
    appended += 8;
  }
  EXPECT_TRUE(flush);
  EXPECT_GE(set.footprint_bytes(), 256);
  EXPECT_LT(appended, 10000);  // the byte budget fired, not the row cap
}

TEST(ArraySetTest, ClearKeepBuffersRetainsLayoutAndResetsCounters) {
  const db::Schema schema = tiny_schema();
  ArraySet set(schema, ArraySet::Config{});
  set.append_batch(0, make_batch(schema, 0, 0, 16));
  set.append_batch(1, make_batch(schema, 1, 0, 16));
  EXPECT_EQ(set.active_arrays(), 2);
  set.clear_keep_buffers();
  // Counters reset, retained-but-empty buffers are not "active".
  EXPECT_EQ(set.buffered_rows(), 0);
  EXPECT_EQ(set.footprint_bytes(), 0);
  EXPECT_EQ(set.active_arrays(), 0);
  EXPECT_FALSE(set.should_flush());
  int visited = 0;
  set.for_each_batch_in_topo_order(
      [&](uint32_t, const db::ColumnBatch&) { ++visited; });
  EXPECT_EQ(visited, 0);
  // Next cycle reuses the buffers; footprint counts only the new rows.
  set.append_batch(0, make_batch(schema, 0, 100, 4));
  EXPECT_EQ(set.buffered_rows(), 4);
  const int64_t footprint_4 = set.footprint_bytes();
  EXPECT_GT(footprint_4, 0);
  set.for_each_batch_in_topo_order(
      [&](uint32_t table_id, const db::ColumnBatch& batch) {
        EXPECT_EQ(table_id, 0u);
        ASSERT_EQ(batch.size(), 4u);
        EXPECT_EQ(batch.i64_at(0, 0), 100);
      });
}

TEST(ArraySetTest, RowAndBatchFootprintsBothFeedHighWater) {
  const db::Schema schema = tiny_schema();
  ArraySet::Config config;
  config.default_rows = 1000000;
  config.memory_high_water_bytes = 100000;
  ArraySet set(schema, config);
  set.append(0, make_row(1));
  const int64_t row_only = set.footprint_bytes();
  EXPECT_GT(row_only, 0);
  set.append_batch(1, make_batch(schema, 1, 0, 8));
  EXPECT_GT(set.footprint_bytes(), row_only);
}

}  // namespace
}  // namespace sky::core
