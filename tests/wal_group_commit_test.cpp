// Multi-threaded tests for the WAL's commit-coalescing group-commit window:
// the max-group cutoff folds a full complement of committers into one
// device write, sync() closes a window instead of waiting it out, and the
// leader/piggyback accounting stays consistent under concurrent load.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "storage/wal.h"

namespace sky::storage {
namespace {

TEST(WalGroupCommitTest, MaxGroupCutoffFoldsCommittersIntoOneFlush) {
  WalOptions options;
  options.commit_window = 10 * kSecond;  // cutoff, not expiry, must close it
  options.max_group_commits = 4;
  WriteAheadLog wal(options);
  // Pre-append all four transactions' records so the pending region is
  // multi-transaction no matter which committer wins the leader election.
  for (uint64_t txn = 1; txn <= 4; ++txn) {
    wal.append(WalRecordType::kInsert, txn, 1, "row-" + std::to_string(txn));
    wal.append(WalRecordType::kCommit, txn, 0, "");
  }

  std::atomic<int> led{0}, piggybacked{0};
  std::vector<std::thread> committers;
  for (int i = 0; i < 4; ++i) {
    committers.emplace_back([&] {
      const WalFlushResult result = wal.flush();
      if (result.led) {
        led.fetch_add(1);
        EXPECT_EQ(result.group_size, 4);
      }
      if (result.piggybacked) piggybacked.fetch_add(1);
    });
  }
  for (std::thread& committer : committers) committer.join();

  const WalStats stats = wal.stats();
  EXPECT_EQ(led.load(), 1);
  EXPECT_EQ(piggybacked.load(), 3);
  EXPECT_EQ(stats.flushes, 1);
  EXPECT_EQ(stats.group_piggybacks, 3);
  EXPECT_EQ(stats.commit_requests, 4);
  EXPECT_EQ(stats.group_size_hist[3], 1);  // one flush covering 4 commits
  EXPECT_EQ(wal.unflushed_bytes(), 0);
  EXPECT_EQ(wal.durable_lsn(), wal.appended_lsn());
}

TEST(WalGroupCommitTest, SyncClosesAnOpenWindow) {
  WalOptions options;
  options.commit_window = 10 * kSecond;  // the test hangs if sync waits it out
  options.max_group_commits = 8;
  WriteAheadLog wal(options);
  wal.append(WalRecordType::kInsert, 1, 1, "a");
  wal.append(WalRecordType::kInsert, 2, 1, "b");
  wal.append(WalRecordType::kCommit, 1, 0, "");

  std::thread leader([&] { wal.flush(); });
  // Let the committer queue up (it may or may not have opened the window
  // yet; sync() handles both sides of that race).
  while (wal.stats().commit_requests == 0) std::this_thread::yield();
  wal.sync();
  EXPECT_EQ(wal.durable_lsn(), wal.appended_lsn());
  leader.join();
  EXPECT_EQ(wal.unflushed_bytes(), 0);
}

TEST(WalGroupCommitTest, ConcurrentCommittersStayConsistent) {
  constexpr int kThreads = 4;
  constexpr int kCommitsPerThread = 50;
  WalOptions options;
  options.commit_window = 200 * kMicrosecond;
  options.max_group_commits = kThreads;
  options.flush_latency = 10 * kMicrosecond;
  WriteAheadLog wal(options);

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      const uint64_t txn = static_cast<uint64_t>(t) + 1;
      for (int i = 0; i < kCommitsPerThread; ++i) {
        wal.append(WalRecordType::kInsert, txn, 1, "payload");
        wal.append(WalRecordType::kCommit, txn, 0, "");
        const WalFlushResult result = wal.flush();
        // Strict mode: the covering write happened before the ack.
        EXPECT_GE(wal.durable_lsn(), 1u);
        EXPECT_FALSE(result.led && result.piggybacked);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  wal.sync();

  const WalStats stats = wal.stats();
  EXPECT_EQ(stats.records, kThreads * kCommitsPerThread * 2);
  EXPECT_EQ(stats.bytes_flushed, stats.bytes_appended);
  EXPECT_EQ(wal.durable_lsn(), wal.appended_lsn());
  EXPECT_EQ(wal.unflushed_bytes(), 0);
  // Every led commit flush landed in exactly one histogram bucket, and no
  // committer was double-counted as both leader and piggybacker.
  const int64_t led_flushes = std::accumulate(
      stats.group_size_hist.begin(), stats.group_size_hist.end(), int64_t{0});
  EXPECT_LE(led_flushes, stats.flushes);
  EXPECT_LE(led_flushes + stats.group_piggybacks, stats.commit_requests);
}

}  // namespace
}  // namespace sky::storage
