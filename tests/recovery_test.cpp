// WAL recovery tests: committed work survives replay, uncommitted and
// rolled-back work does not, a full loader run round-trips through the
// log — including runs with skipped error rows — and a multi-worker
// same-table load killed mid-batch recovers extent-for-extent.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "catalog/generator.h"
#include "catalog/pq_schema.h"
#include "client/session.h"
#include "core/bulk_loader.h"
#include "db/recovery.h"
#include "shard/sharded_repository.h"

namespace sky::db {
namespace {

Schema pair_schema() {
  Schema schema;
  TableDef parent;
  parent.name = "p";
  parent.col("id", ColumnType::kInt64, false);
  parent.col("payload", ColumnType::kString);
  parent.primary_key = {"id"};
  EXPECT_TRUE(schema.add_table(parent).is_ok());
  TableDef child;
  child.name = "c";
  child.col("id", ColumnType::kInt64, false);
  child.col("p_id", ColumnType::kInt64, false);
  child.primary_key = {"id"};
  child.foreign_keys.push_back(ForeignKey{{"p_id"}, "p"});
  EXPECT_TRUE(schema.add_table(child).is_ok());
  return schema;
}

EngineOptions retain_options() {
  EngineOptions options;
  options.retain_wal_records = true;
  return options;
}

TEST(RecoveryTest, CommittedWorkSurvives) {
  const Schema schema = pair_schema();
  Engine engine(schema, retain_options());
  const uint64_t txn = engine.begin_transaction();
  OpCosts costs;
  ASSERT_TRUE(engine.insert_row(txn, 0, {Value::i64(1), Value::str("a")},
                                costs).is_ok());
  ASSERT_TRUE(engine.insert_row(txn, 1, {Value::i64(10), Value::i64(1)},
                                costs).is_ok());
  ASSERT_TRUE(engine.commit(txn).is_ok());

  RecoveryStats stats;
  const auto recovered = recover_from_wal(schema, engine.wal_records(),
                                          EngineOptions{}, &stats);
  ASSERT_TRUE(recovered.is_ok()) << recovered.status().to_string();
  EXPECT_EQ(stats.rows_replayed, 2);
  EXPECT_EQ(stats.transactions_committed, 1);
  EXPECT_TRUE(engines_equivalent(engine, **recovered).is_ok());
  EXPECT_TRUE((*recovered)->verify_integrity().is_ok());
}

TEST(RecoveryTest, UncommittedWorkIsDiscarded) {
  const Schema schema = pair_schema();
  Engine engine(schema, retain_options());
  const uint64_t committed = engine.begin_transaction();
  OpCosts costs;
  ASSERT_TRUE(engine.insert_row(committed, 0, {Value::i64(1), Value::str("a")},
                                costs).is_ok());
  ASSERT_TRUE(engine.commit(committed).is_ok());
  // A second transaction inserts but never commits ("crash").
  const uint64_t torn = engine.begin_transaction();
  ASSERT_TRUE(engine.insert_row(torn, 0, {Value::i64(2), Value::str("b")},
                                costs).is_ok());

  RecoveryStats stats;
  const auto recovered = recover_from_wal(schema, engine.wal_records(),
                                          EngineOptions{}, &stats);
  ASSERT_TRUE(recovered.is_ok());
  EXPECT_EQ((*recovered)->live_view().row_count(0), 1);
  EXPECT_TRUE((*recovered)->live_view().pk_lookup(0, {Value::i64(1)}).is_ok());
  EXPECT_FALSE((*recovered)->live_view().pk_lookup(0, {Value::i64(2)}).is_ok());
  EXPECT_EQ(stats.rows_discarded, 1);
  EXPECT_EQ(stats.transactions_discarded, 1);
  // Tidy up the open transaction so the engine tears down cleanly.
  ASSERT_TRUE(engine.rollback(torn).is_ok());
}

TEST(RecoveryTest, RolledBackWorkIsDiscarded) {
  const Schema schema = pair_schema();
  Engine engine(schema, retain_options());
  OpCosts costs;
  const uint64_t doomed = engine.begin_transaction();
  ASSERT_TRUE(engine.insert_row(doomed, 0, {Value::i64(7), Value::str("x")},
                                costs).is_ok());
  ASSERT_TRUE(engine.rollback(doomed).is_ok());
  const uint64_t kept = engine.begin_transaction();
  ASSERT_TRUE(engine.insert_row(kept, 0, {Value::i64(8), Value::str("y")},
                                costs).is_ok());
  ASSERT_TRUE(engine.commit(kept).is_ok());

  const auto recovered = recover_from_wal(schema, engine.wal_records());
  ASSERT_TRUE(recovered.is_ok());
  EXPECT_EQ((*recovered)->live_view().row_count(0), 1);
  EXPECT_FALSE((*recovered)->live_view().pk_lookup(0, {Value::i64(7)}).is_ok());
  EXPECT_TRUE(engines_equivalent(engine, **recovered).is_ok());
}

TEST(RecoveryTest, EmptyLogRecoversEmptyEngine) {
  const Schema schema = pair_schema();
  const auto recovered = recover_from_wal(schema, {});
  ASSERT_TRUE(recovered.is_ok());
  EXPECT_EQ((*recovered)->total_rows(), 0);
}

TEST(RecoveryTest, FullLoaderRunRoundTrips) {
  // A real bulk load — with error rows skipped mid-batch — replays from the
  // WAL into an equivalent repository.
  const Schema schema = catalog::make_pq_schema();
  EngineOptions options = retain_options();
  Engine engine(schema, options);
  client::DirectSession session(engine);
  core::BulkLoaderOptions loader_options;
  loader_options.commit.every_cycles = 2;  // several commit boundaries
  core::BulkLoader loader(session, schema, loader_options);
  ASSERT_TRUE(loader
                  .load_text("reference",
                             catalog::CatalogGenerator::reference_file().text)
                  .is_ok());
  catalog::FileSpec spec;
  spec.seed = 404;
  spec.unit_id = 44;
  spec.target_bytes = 64 * 1024;
  spec.error_rate = 0.05;
  const auto file = catalog::CatalogGenerator::generate(spec);
  const auto report = loader.load_text("dirty.cat", file.text);
  ASSERT_TRUE(report.is_ok());
  ASSERT_GT(report->rows_skipped_server, 0);  // recovery under mid-batch skips

  RecoveryStats stats;
  const auto recovered =
      recover_from_wal(schema, engine.wal_records(), EngineOptions{}, &stats);
  ASSERT_TRUE(recovered.is_ok()) << recovered.status().to_string();
  EXPECT_EQ(stats.rows_replayed, engine.total_rows());
  EXPECT_TRUE(engines_equivalent(engine, **recovered).is_ok());
  EXPECT_TRUE((*recovered)->verify_integrity().is_ok());
}

// Decorates a session so the Nth execute_batch call reports a dropped
// connection (nothing applied) — the fault_injection_test pattern, used
// here to kill one worker of a parallel load mid-batch.
class CrashingSession final : public client::Session {
 public:
  CrashingSession(client::Session& inner, int64_t fail_on_call)
      : inner_(inner), fail_on_call_(fail_on_call) {}

  Result<uint32_t> prepare_insert(std::string_view table_name) override {
    return inner_.prepare_insert(table_name);
  }
  client::BatchOutcome execute_batch(uint32_t table,
                                     std::span<const Row> rows) override {
    if (++calls_ == fail_on_call_) {
      client::BatchOutcome outcome;
      outcome.applied = 0;
      outcome.error =
          BatchError{0, Status(ErrorCode::kIoError, "worker killed")};
      return outcome;
    }
    return inner_.execute_batch(table, rows);
  }
  Status execute_single(uint32_t table, const Row& row) override {
    return inner_.execute_single(table, row);
  }
  Status commit() override { return inner_.commit(); }
  void client_compute(Nanos duration) override {
    inner_.client_compute(duration);
  }
  void note_buffered_rows(int64_t rows, int64_t bytes,
                          bool columnar) override {
    inner_.note_buffered_rows(rows, bytes, columnar);
  }
  Nanos now() const override { return inner_.now(); }
  const client::SessionStats& stats() const override {
    return inner_.stats();
  }

 private:
  client::Session& inner_;
  int64_t calls_ = 0;
  int64_t fail_on_call_;
};

// Four workers load the same tables in parallel over a sharded heap; one
// worker's connection dies mid-batch and the log is snapshotted while its
// transaction is still open (a crash, not a tidy rollback). Replay must
// discard the torn transaction, rebuild an equivalent repository, and put
// every committed row back into the extent it was originally appended to.
TEST(RecoveryTest, ParallelSameTableCrashRoundTrip) {
  const Schema schema = catalog::make_pq_schema();
  EngineOptions options = retain_options();
  options.heap_extents = 3;
  Engine engine(schema, options);
  {
    client::DirectSession session(engine);
    core::BulkLoaderOptions loader_options;
    loader_options.write_audit_row = false;
    core::BulkLoader loader(session, schema, loader_options);
    ASSERT_TRUE(loader
                    .load_text("reference",
                               catalog::CatalogGenerator::reference_file().text)
                    .is_ok());
  }

  // The crashed worker's session outlives the load so the WAL snapshot below
  // still sees its transaction open.
  auto crashed_session = std::make_unique<client::DirectSession>(engine);
  std::atomic<int> clean_loads{0};
  bool crashed_load_failed = false;
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      catalog::FileSpec spec;
      spec.seed = 7100 + static_cast<uint64_t>(w);
      spec.unit_id = 710 + w;
      spec.target_bytes = 32 * 1024;
      const auto file = catalog::CatalogGenerator::generate(spec);
      core::BulkLoaderOptions loader_options;
      loader_options.write_audit_row = false;
      loader_options.commit.every_cycles = 2;
      if (w == 3) {
        CrashingSession session(*crashed_session, /*fail_on_call=*/9);
        core::BulkLoader loader(session, schema, loader_options);
        crashed_load_failed = !loader.load_text("crash.cat", file.text).is_ok();
      } else {
        client::DirectSession session(engine);
        core::BulkLoader loader(session, schema, loader_options);
        if (loader.load_text("w" + std::to_string(w) + ".cat", file.text)
                .is_ok()) {
          clean_loads.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  ASSERT_EQ(clean_loads.load(), 3);
  ASSERT_TRUE(crashed_load_failed);

  const auto records = engine.wal_records();  // torn transaction still open
  crashed_session.reset();  // now roll it back so the source engine is clean

  RecoveryStats stats;
  const auto recovered =
      recover_from_wal(schema, records, EngineOptions{}, &stats);
  ASSERT_TRUE(recovered.is_ok()) << recovered.status().to_string();
  EXPECT_GE(stats.transactions_discarded, 1);
  EXPECT_GT(stats.rows_discarded, 0);  // the torn txn had uncommitted rows
  EXPECT_TRUE(engines_equivalent(engine, **recovered).is_ok());
  EXPECT_TRUE((*recovered)->verify_integrity().is_ok());

  // Extent-faithful replay: per table, the live rows grouped by extent match
  // the source engine exactly (page/slot may differ — the source heap has
  // tombstone holes where the torn transaction's rows were undone).
  for (int t = 0; t < schema.table_count(); ++t) {
    const uint32_t tid = static_cast<uint32_t>(t);
    std::multiset<std::pair<uint32_t, std::string>> original, replayed;
    ASSERT_TRUE(engine.live_view()
                    .scan_heap(tid,
                               [&](storage::SlotId slot,
                                   std::string_view bytes) {
                                 original.emplace(slot.extent,
                                                  std::string(bytes));
                               })
                    .is_ok());
    ASSERT_TRUE((*recovered)->live_view()
                    .scan_heap(tid,
                                [&](storage::SlotId slot,
                                    std::string_view bytes) {
                                  replayed.emplace(slot.extent,
                                                   std::string(bytes));
                                })
                    .is_ok());
    EXPECT_EQ(original, replayed) << "table " << schema.table(tid).name;
  }

  // The parallel load really spread one table across extents, and recovery
  // (asked for a single-extent engine) widened itself to hold them.
  const uint32_t objects = engine.table_id("objects").value();
  const auto extents = (*recovered)->heap_extent_stats(objects);
  ASSERT_TRUE(extents.is_ok());
  ASSERT_EQ(extents->size(), 3u);
  int populated = 0;
  for (const auto& extent : *extents) populated += extent.rows > 0 ? 1 : 0;
  EXPECT_GT(populated, 1);

  // Replay is deterministic: a second recovery of the same records yields a
  // byte-identical physical layout, down to page and slot.
  const auto again = recover_from_wal(schema, records);
  ASSERT_TRUE(again.is_ok());
  using PhysicalRow =
      std::tuple<uint32_t, uint32_t, uint32_t, uint32_t, std::string>;
  std::vector<PhysicalRow> first_layout, second_layout;
  for (int t = 0; t < schema.table_count(); ++t) {
    const uint32_t tid = static_cast<uint32_t>(t);
    ASSERT_TRUE((*recovered)->live_view()
                    .scan_heap(tid,
                                [&](storage::SlotId slot,
                                    std::string_view bytes) {
                                  first_layout.emplace_back(
                                      tid, slot.extent, slot.page, slot.slot,
                                      std::string(bytes));
                                })
                    .is_ok());
    ASSERT_TRUE((*again)->live_view()
                    .scan_heap(tid,
                                [&](storage::SlotId slot,
                                    std::string_view bytes) {
                                  second_layout.emplace_back(
                                      tid, slot.extent, slot.page, slot.slot,
                                      std::string(bytes));
                                })
                    .is_ok());
  }
  EXPECT_EQ(first_layout, second_layout);
}

// The columnar fast path logs one kInsertBatch record per extent append
// instead of a record per row. Replay must rebuild an extent-identical
// repository from those batch records — same live rows in the same extents
// as the source engine, deterministically down to page and slot across
// repeated replays — even when server-side skips interrupted batches.
TEST(RecoveryTest, ColumnarLoadRoundTripsExtentIdentical) {
  const Schema schema = catalog::make_pq_schema();
  Engine engine(schema, retain_options());
  client::DirectSession session(engine);
  {
    core::BulkLoaderOptions reference_options;
    reference_options.write_audit_row = false;
    core::BulkLoader loader(session, schema, reference_options);
    ASSERT_TRUE(loader
                    .load_text("reference",
                               catalog::CatalogGenerator::reference_file().text)
                    .is_ok());
  }
  catalog::FileSpec spec;
  spec.seed = 505;
  spec.unit_id = 55;
  spec.target_bytes = 64 * 1024;
  spec.error_rate = 0.05;
  const auto file = catalog::CatalogGenerator::generate(spec);
  core::BulkLoaderOptions loader_options;
  loader_options.write_audit_row = false;
  loader_options.columnar_ingest = true;
  loader_options.commit.every_cycles = 2;  // several commit boundaries
  core::BulkLoader loader(session, schema, loader_options);
  const auto report = loader.load_text("columnar.cat", file.text);
  ASSERT_TRUE(report.is_ok());
  ASSERT_GT(report->rows_skipped_server, 0);  // skips interrupted batches

  // The load actually took the batch-logging path.
  const auto records = engine.wal_records();
  int64_t batch_records = 0;
  for (const auto& record : records) {
    if (record.type == storage::WalRecordType::kInsertBatch) ++batch_records;
  }
  EXPECT_GT(batch_records, 0);

  RecoveryStats stats;
  const auto recovered =
      recover_from_wal(schema, records, EngineOptions{}, &stats);
  ASSERT_TRUE(recovered.is_ok()) << recovered.status().to_string();
  EXPECT_EQ(stats.rows_replayed, engine.total_rows());
  EXPECT_TRUE(engines_equivalent(engine, **recovered).is_ok());
  EXPECT_TRUE((*recovered)->verify_integrity().is_ok());

  // Extent-identical: per table, live rows grouped by extent match the
  // source exactly (page/slot may differ where skipped rows left holes).
  for (int t = 0; t < schema.table_count(); ++t) {
    const uint32_t tid = static_cast<uint32_t>(t);
    std::multiset<std::pair<uint32_t, std::string>> original, replayed;
    ASSERT_TRUE(engine.live_view()
                    .scan_heap(tid,
                               [&](storage::SlotId slot,
                                   std::string_view bytes) {
                                 original.emplace(slot.extent,
                                                  std::string(bytes));
                               })
                    .is_ok());
    ASSERT_TRUE((*recovered)->live_view()
                    .scan_heap(tid,
                                [&](storage::SlotId slot,
                                    std::string_view bytes) {
                                  replayed.emplace(slot.extent,
                                                   std::string(bytes));
                                })
                    .is_ok());
    EXPECT_EQ(original, replayed) << "table " << schema.table(tid).name;
  }

  // Deterministic replay: two recoveries of the same batch records agree
  // byte-for-byte on physical layout.
  const auto again = recover_from_wal(schema, records);
  ASSERT_TRUE(again.is_ok());
  using PhysicalRow =
      std::tuple<uint32_t, uint32_t, uint32_t, uint32_t, std::string>;
  std::vector<PhysicalRow> first_layout, second_layout;
  for (int t = 0; t < schema.table_count(); ++t) {
    const uint32_t tid = static_cast<uint32_t>(t);
    ASSERT_TRUE((*recovered)->live_view()
                    .scan_heap(tid,
                                [&](storage::SlotId slot,
                                    std::string_view bytes) {
                                  first_layout.emplace_back(
                                      tid, slot.extent, slot.page, slot.slot,
                                      std::string(bytes));
                                })
                    .is_ok());
    ASSERT_TRUE((*again)->live_view()
                    .scan_heap(tid,
                                [&](storage::SlotId slot,
                                    std::string_view bytes) {
                                  second_layout.emplace_back(
                                      tid, slot.extent, slot.page, slot.slot,
                                      std::string(bytes));
                                })
                    .is_ok());
  }
  EXPECT_EQ(first_layout, second_layout);
}

// Crash immediately after the covering flush: the WAL is truncated at the
// durable-LSN watermark, exactly what a device would hold the instant the
// flush completed. Under strict durability every acked commit must be below
// that watermark — including commits that rode a coalescing window — so
// every acked row survives recovery.
TEST(RecoveryTest, StrictAckedCommitsSurviveCrashAtWatermark) {
  const Schema schema = pair_schema();
  EngineOptions options = retain_options();
  options.commit_window = kMillisecond;  // exercise the window path
  Engine engine(schema, options);
  OpCosts costs;
  // Two interleaved transactions so the pending region is multi-transaction
  // and the first commit's leader actually holds the window open.
  const uint64_t a = engine.begin_transaction();
  const uint64_t b = engine.begin_transaction();
  ASSERT_TRUE(engine.insert_row(a, 0, {Value::i64(1), Value::str("a")},
                                costs).is_ok());
  ASSERT_TRUE(engine.insert_row(b, 0, {Value::i64(2), Value::str("b")},
                                costs).is_ok());
  ASSERT_TRUE(engine.commit(a).is_ok());
  ASSERT_TRUE(engine.commit(b).is_ok());
  // A third transaction appends after the last flush and never commits.
  const uint64_t torn = engine.begin_transaction();
  ASSERT_TRUE(engine.insert_row(torn, 0, {Value::i64(3), Value::str("c")},
                                costs).is_ok());
  ASSERT_LT(engine.wal_durable_lsn(), engine.wal_appended_lsn());

  auto records = engine.wal_records();
  records.resize(engine.wal_durable_lsn());  // crash: lose undurable tail
  const auto recovered = recover_from_wal(schema, records);
  ASSERT_TRUE(recovered.is_ok()) << recovered.status().to_string();
  EXPECT_EQ((*recovered)->live_view().row_count(0), 2);
  EXPECT_TRUE((*recovered)->live_view().pk_lookup(0, {Value::i64(1)}).is_ok());
  EXPECT_TRUE((*recovered)->live_view().pk_lookup(0, {Value::i64(2)}).is_ok());
  EXPECT_FALSE((*recovered)->live_view().pk_lookup(0, {Value::i64(3)}).is_ok());
  ASSERT_TRUE(engine.rollback(torn).is_ok());
}

// Relaxed durability acks at append; the watermark must be honest about it.
// A commit before the sync_wal() checkpoint survives a crash at the
// watermark, a commit after it is lost — and the engine said so, because
// its records sat above wal_durable_lsn().
TEST(RecoveryTest, RelaxedWatermarkIsHonest) {
  const Schema schema = pair_schema();
  EngineOptions options = retain_options();
  options.durability = storage::DurabilityMode::kRelaxed;
  Engine engine(schema, options);
  OpCosts costs;
  const uint64_t a = engine.begin_transaction();
  ASSERT_TRUE(engine.insert_row(a, 0, {Value::i64(1), Value::str("a")},
                                costs).is_ok());
  ASSERT_TRUE(engine.commit(a).is_ok());
  EXPECT_EQ(engine.wal_durable_lsn(), 0u);  // acked but not yet durable
  ASSERT_GT(engine.sync_wal(), 0);          // checkpoint covers A
  EXPECT_EQ(engine.wal_durable_lsn(), engine.wal_appended_lsn());

  const uint64_t b = engine.begin_transaction();
  ASSERT_TRUE(engine.insert_row(b, 0, {Value::i64(2), Value::str("b")},
                                costs).is_ok());
  ASSERT_TRUE(engine.commit(b).is_ok());  // acked above the watermark
  EXPECT_LT(engine.wal_durable_lsn(), engine.wal_appended_lsn());

  auto records = engine.wal_records();
  records.resize(engine.wal_durable_lsn());  // crash before any new sync
  const auto recovered = recover_from_wal(schema, records);
  ASSERT_TRUE(recovered.is_ok()) << recovered.status().to_string();
  EXPECT_TRUE((*recovered)->live_view().pk_lookup(0, {Value::i64(1)}).is_ok());
  EXPECT_FALSE((*recovered)->live_view().pk_lookup(0, {Value::i64(2)}).is_ok());
}

// Crash while a writer is *blocked on an ITL slot*: the WAL is snapshotted
// with one transaction holding the single slot uncommitted and another queued
// behind it (which therefore has no WAL footprint at all). Replay into a
// fresh gated engine must keep only the committed work and leave every gate
// slot free — an admission held at crash time is not a durable artifact.
TEST(RecoveryTest, CrashWhileBlockedOnItlSlotLeaksNothing) {
  const Schema schema = pair_schema();
  EngineOptions options = retain_options();
  options.concurrency.itl_slots_per_table = 1;
  Engine engine(schema, options);
  OpCosts costs;
  // Committed baseline row.
  const uint64_t base = engine.begin_transaction();
  ASSERT_TRUE(engine.insert_row(base, 0, {Value::i64(1), Value::str("base")},
                                costs).is_ok());
  ASSERT_TRUE(engine.commit(base).is_ok());

  // Holder: open transaction owning table 0's only ITL slot.
  const uint64_t holder = engine.begin_transaction();
  ASSERT_TRUE(engine.insert_row(holder, 0, {Value::i64(2), Value::str("open")},
                                costs).is_ok());

  // Blocked writer: queues behind the holder at admission.
  std::thread blocked([&engine] {
    OpCosts thread_costs;
    const uint64_t txn = engine.begin_transaction();
    ASSERT_TRUE(engine
                    .insert_row(txn, 0, {Value::i64(3), Value::str("late")},
                                thread_costs)
                    .is_ok());
    EXPECT_GT(thread_costs.itl_wait_ns, 0);
    ASSERT_TRUE(engine.commit(txn).is_ok());
  });
  // Wait until the writer is provably parked on the gate, then "crash".
  while (engine.concurrency_stats().itl.waits < 1) {
    std::this_thread::yield();
  }
  const auto records = engine.wal_records();  // crash snapshot
  ASSERT_TRUE(engine.commit(holder).is_ok());  // unblock and drain
  blocked.join();

  // Replay the snapshot into an engine with the same gate configuration.
  RecoveryStats stats;
  const auto recovered =
      recover_from_wal(schema, records, options, &stats);
  ASSERT_TRUE(recovered.is_ok()) << recovered.status().to_string();
  // Only the committed baseline survives: the holder was uncommitted and the
  // blocked writer never reached the WAL.
  EXPECT_EQ((*recovered)->live_view().row_count(0), 1);
  EXPECT_TRUE((*recovered)->live_view().pk_lookup(0, {Value::i64(1)}).is_ok());
  EXPECT_FALSE((*recovered)->live_view().pk_lookup(0, {Value::i64(2)}).is_ok());
  EXPECT_FALSE((*recovered)->live_view().pk_lookup(0, {Value::i64(3)}).is_ok());
  EXPECT_EQ(stats.transactions_discarded, 1);
  // No leaked admissions: replay acquired and released its own slots.
  const ConcurrencyStats gates = (*recovered)->concurrency_stats();
  EXPECT_EQ(gates.itl.in_use, 0);
  EXPECT_EQ(gates.transaction_gate.in_use, 0);
  EXPECT_GE(gates.itl.acquires, 1u);
  EXPECT_TRUE((*recovered)->verify_integrity().is_ok());

  // The source engine drained cleanly too once the holder committed.
  const ConcurrencyStats live = engine.concurrency_stats();
  EXPECT_EQ(live.itl.in_use, 0);
  EXPECT_EQ(live.transaction_gate.in_use, 0);
  EXPECT_EQ(engine.live_view().row_count(0), 3);
}

// Crash while a pinned snapshot scan is mid-flight: the WAL snapshot taken
// at that instant replays to exactly the committed prefix the pin can see —
// published-but-uncommitted rows are visible to neither — and dropping the
// pin leaves no snapshot pages or pin registrations behind.
TEST(RecoveryTest, CrashDuringPinnedSnapshotScanReplaysClean) {
  const Schema schema = pair_schema();
  Engine engine(schema, retain_options());
  OpCosts costs;
  // Committed baseline: three transactions over both tables.
  for (int64_t t = 0; t < 3; ++t) {
    const uint64_t txn = engine.begin_transaction();
    for (int64_t j = 0; j < 4; ++j) {
      const int64_t id = t * 100 + j;
      ASSERT_TRUE(engine
                      .insert_row(txn, 0,
                                  {Value::i64(id),
                                   Value::str("p" + std::to_string(id))},
                                  costs)
                      .is_ok());
      ASSERT_TRUE(engine
                      .insert_row(txn, 1, {Value::i64(1000 + id),
                                           Value::i64(id)}, costs)
                      .is_ok());
    }
    ASSERT_TRUE(engine.commit(txn).is_ok());
  }
  // One more transaction publishes rows to the live heap but never commits
  // before the "crash" — the two-phase insert makes them live-visible, but
  // they must appear in neither the pinned snapshot nor the replay.
  const uint64_t torn = engine.begin_transaction();
  ASSERT_TRUE(engine.insert_row(torn, 0, {Value::i64(999), Value::str("t")},
                                costs).is_ok());
  ASSERT_EQ(engine.live_view().row_count(0), 13);  // live read-uncommitted sees it

  // The scan in flight at crash time: pin now, read through it after the
  // crash snapshot is taken (the pin holds the chain alive regardless).
  Snapshot pinned = engine.pin_snapshot();
  const auto records = engine.wal_records();  // crash snapshot

  RecoveryStats stats;
  const auto recovered =
      recover_from_wal(schema, records, EngineOptions{}, &stats);
  ASSERT_TRUE(recovered.is_ok()) << recovered.status().to_string();
  EXPECT_EQ(stats.transactions_committed, 3);
  EXPECT_EQ(stats.transactions_discarded, 1);
  EXPECT_EQ(stats.rows_discarded, 1);

  // Extent-identical: the pinned snapshot's physical view equals the
  // replayed engine's heap, table by table — same committed prefix, same
  // extents, torn row in neither.
  for (int t = 0; t < schema.table_count(); ++t) {
    const uint32_t tid = static_cast<uint32_t>(t);
    std::multiset<std::pair<uint32_t, std::string>> snapshot_view, replayed;
    ASSERT_TRUE(engine
                    .view_at(pinned).scan_heap(tid,
                                        [&](storage::SlotId slot,
                                            std::string_view bytes) {
                                          snapshot_view.emplace(
                                              slot.extent, std::string(bytes));
                                        })
                    .is_ok());
    ASSERT_TRUE((*recovered)->live_view()
                    .scan_heap(tid,
                                [&](storage::SlotId slot,
                                    std::string_view bytes) {
                                  replayed.emplace(slot.extent,
                                                   std::string(bytes));
                                })
                    .is_ok());
    EXPECT_EQ(snapshot_view, replayed) << "table " << schema.table(tid).name;
  }
  EXPECT_EQ(engine.view_at(pinned).row_count(0), 12);
  EXPECT_EQ((*recovered)->live_view().row_count(0), 12);
  EXPECT_FALSE((*recovered)->live_view().pk_lookup(0, {Value::i64(999)}).is_ok());
  EXPECT_TRUE((*recovered)->verify_integrity().is_ok());

  // Nothing leaks: the pin was the only one, and dropping it empties the
  // registry while the published chain stays intact for future pins.
  EXPECT_EQ(engine.snapshot_stats().active_pins, 1);
  { const Snapshot drop = std::move(pinned); }
  EXPECT_EQ(engine.snapshot_stats().active_pins, 0);
  EXPECT_EQ(engine.snapshot_published_lsn(), 3u);
  const Snapshot again = engine.pin_snapshot();
  EXPECT_EQ(engine.view_at(again).row_count(0), 12);

  // Clean teardown of the source engine.
  ASSERT_TRUE(engine.rollback(torn).is_ok());
  EXPECT_TRUE(engine.verify_integrity().is_ok());
}

// A sharded load killed mid-batch: committed work was in flight to several
// shards, one transaction never committed. Per-shard WAL replay must rebuild
// every shard extent-identically (the router is deterministic, so replayed
// rows land where they were logged), discard the torn transaction on every
// shard it touched, and leave a foreign-key closure that reconciles.
TEST(RecoveryTest, ShardedCrashReplaysEveryShardExtentIdentical) {
  Schema schema;
  TableDef obj;
  obj.name = "obj";
  obj.col("id", ColumnType::kInt64, false);
  obj.col("ra", ColumnType::kDouble, false);
  obj.col("dec", ColumnType::kDouble, false);
  obj.primary_key = {"id"};
  obj.indexes.push_back(
      IndexDef{"ix_htm", {}, false, HtmIndexSpec{"ra", "dec", 12}});
  ASSERT_TRUE(schema.add_table(obj).is_ok());
  TableDef det;
  det.name = "det";
  det.col("id", ColumnType::kInt64, false);
  det.col("object_id", ColumnType::kInt64, false);
  det.primary_key = {"id"};
  det.foreign_keys.push_back(ForeignKey{{"object_id"}, "obj"});
  ASSERT_TRUE(schema.add_table(det).is_ok());

  EngineOptions options = retain_options();
  options.policies.shard.shard_count = 3;
  ShardedRepository repo(schema, options);
  const uint32_t obj_id = repo.schema().table_id("obj").value();
  const uint32_t det_id = repo.schema().table_id("det").value();

  // Committed load: objects spread across the sky so the batch splits into
  // runs on every shard; detections route block-cyclically by PK, so their
  // FK edges cross shards.
  auto session = repo.make_session();
  ASSERT_TRUE(session->prepare_insert("obj").is_ok());
  ASSERT_TRUE(session->prepare_insert("det").is_ok());
  std::vector<Row> objects;
  for (int64_t i = 0; i < 240; ++i) {
    const double ra = static_cast<double>((i * 131) % 360);
    const double dec = static_cast<double>((i * 37) % 120) - 60.0;
    objects.push_back({Value::i64(i), Value::f64(ra), Value::f64(dec)});
  }
  std::vector<Row> detections;
  for (int64_t i = 0; i < 600; ++i) {
    detections.push_back({Value::i64(i), Value::i64(i % 240)});
  }
  ASSERT_FALSE(session->execute_batch(obj_id, objects).error.has_value());
  ASSERT_FALSE(session->execute_batch(det_id, detections).error.has_value());
  ASSERT_TRUE(session->commit().is_ok());

  // Every shard really holds rows — the crash leaves work in flight on all
  // of them, not just one.
  const std::vector<int64_t> committed_rows = repo.shard_rows();
  for (int s = 0; s < repo.shard_count(); ++s) {
    EXPECT_GT(committed_rows[static_cast<size_t>(s)], 0) << "shard " << s;
  }

  // Crash: a second batch lands on several shards and never commits.
  auto torn = repo.make_session();
  ASSERT_TRUE(torn->prepare_insert("obj").is_ok());
  std::vector<Row> uncommitted;
  for (int64_t i = 1000; i < 1060; ++i) {
    const double ra = static_cast<double>((i * 97) % 360);
    uncommitted.push_back({Value::i64(i), Value::f64(ra), Value::f64(10.0)});
  }
  ASSERT_FALSE(torn->execute_batch(obj_id, uncommitted).error.has_value());
  // No commit() — the session is the crash.

  // Capture every shard's log with the torn transaction still open — this
  // is the crash image the replay sees.
  std::vector<std::vector<storage::WalRecord>> logs;
  for (int s = 0; s < repo.shard_count(); ++s) {
    logs.push_back(repo.shard_wal_records(s));
  }
  // Tidy the source repository (session teardown rolls the open shard
  // transactions back) so the extent comparison below is committed-vs-
  // committed.
  torn.reset();

  RecoveryStats stats;
  const auto recovered =
      ShardedRepository::recover_from_wal(schema, logs, options, &stats);
  ASSERT_TRUE(recovered.is_ok()) << recovered.status().to_string();
  ASSERT_EQ((*recovered)->shard_count(), repo.shard_count());
  EXPECT_EQ(stats.rows_replayed, 240 + 600);
  EXPECT_GT(stats.rows_discarded, 0);
  EXPECT_GT(stats.transactions_discarded, 0);

  // Shard-identical replay: every shard matches its original engine, live
  // heap bytes included. The torn rows are gone everywhere.
  for (int s = 0; s < repo.shard_count(); ++s) {
    EXPECT_TRUE(engines_equivalent(repo.shard(s), (*recovered)->shard(s))
                    .is_ok())
        << "shard " << s;
    std::vector<std::pair<storage::SlotId, std::string>> original, replayed;
    ASSERT_TRUE(repo.shard(s)
                    .live_view()
                    .scan_heap(obj_id,
                               [&](storage::SlotId slot,
                                   std::string_view bytes) {
                                 original.emplace_back(slot,
                                                       std::string(bytes));
                               })
                    .is_ok());
    ASSERT_TRUE((*recovered)
                    ->shard(s)
                    .live_view()
                    .scan_heap(obj_id,
                               [&](storage::SlotId slot,
                                   std::string_view bytes) {
                                 replayed.emplace_back(slot,
                                                       std::string(bytes));
                               })
                    .is_ok());
    EXPECT_EQ(original, replayed) << "shard " << s;
  }
  EXPECT_EQ((*recovered)->total_rows(), 240 + 600);
  const ShardedReadView view = (*recovered)->read_view();
  EXPECT_FALSE(view.pk_lookup(obj_id, {Value::i64(1000)}).is_ok());

  // The cross-shard FK closure reconciles after replay: every detection
  // finds its object, many on a different shard.
  const auto report = (*recovered)->reconcile_foreign_keys();
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_TRUE(report->converged());
  EXPECT_EQ(report->rows_checked, 600);
  EXPECT_GT(report->remote_hits, 0);
  EXPECT_TRUE((*recovered)->verify_integrity().is_ok());
}

// The on-disk path: dump per-shard WAL files into dir/shard-NNN/wal.skywal
// and recover the whole repository from the directory.
TEST(RecoveryTest, ShardedWalDirectoryRoundTrips) {
  Schema schema;
  TableDef obj;
  obj.name = "obj";
  obj.col("id", ColumnType::kInt64, false);
  obj.col("ra", ColumnType::kDouble, false);
  obj.col("dec", ColumnType::kDouble, false);
  obj.primary_key = {"id"};
  obj.indexes.push_back(
      IndexDef{"ix_htm", {}, false, HtmIndexSpec{"ra", "dec", 12}});
  ASSERT_TRUE(schema.add_table(obj).is_ok());

  EngineOptions options = retain_options();
  options.policies.shard.shard_count = 2;
  ShardedRepository repo(schema, options);
  const uint32_t obj_id = repo.schema().table_id("obj").value();
  auto session = repo.make_session();
  ASSERT_TRUE(session->prepare_insert("obj").is_ok());
  std::vector<Row> rows;
  for (int64_t i = 0; i < 64; ++i) {
    rows.push_back({Value::i64(i), Value::f64(static_cast<double>(i * 5 % 360)),
                    Value::f64(static_cast<double>(i % 80) - 40.0)});
  }
  ASSERT_FALSE(session->execute_batch(obj_id, rows).error.has_value());
  ASSERT_TRUE(session->commit().is_ok());

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("skyloader_shard_recovery_" + std::to_string(::getpid()));
  ASSERT_TRUE(repo.dump_wal(dir.string()).is_ok());

  const auto recovered =
      ShardedRepository::recover_from_dir(schema, dir.string(), options);
  ASSERT_TRUE(recovered.is_ok()) << recovered.status().to_string();
  for (int s = 0; s < repo.shard_count(); ++s) {
    EXPECT_TRUE(engines_equivalent(repo.shard(s), (*recovered)->shard(s))
                    .is_ok())
        << "shard " << s;
  }
  EXPECT_EQ((*recovered)->total_rows(), 64);

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(RecoveryTest, EquivalenceDetectsDifferences) {
  const Schema schema = pair_schema();
  Engine a(schema), b(schema);
  OpCosts costs;
  const uint64_t txn_a = a.begin_transaction();
  ASSERT_TRUE(a.insert_row(txn_a, 0, {Value::i64(1), Value::str("x")}, costs)
                  .is_ok());
  ASSERT_TRUE(a.commit(txn_a).is_ok());
  // b empty: count mismatch.
  EXPECT_FALSE(engines_equivalent(a, b).is_ok());
  // b with different content at the same PK: content mismatch.
  const uint64_t txn_b = b.begin_transaction();
  ASSERT_TRUE(b.insert_row(txn_b, 0, {Value::i64(1), Value::str("y")}, costs)
                  .is_ok());
  ASSERT_TRUE(b.commit(txn_b).is_ok());
  EXPECT_FALSE(engines_equivalent(a, b).is_ok());
}

}  // namespace
}  // namespace sky::db
