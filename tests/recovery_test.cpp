// WAL recovery tests: committed work survives replay, uncommitted and
// rolled-back work does not, and a full loader run round-trips through the
// log — including runs with skipped error rows.
#include <gtest/gtest.h>

#include "catalog/generator.h"
#include "catalog/pq_schema.h"
#include "client/session.h"
#include "core/bulk_loader.h"
#include "db/recovery.h"

namespace sky::db {
namespace {

Schema pair_schema() {
  Schema schema;
  TableDef parent;
  parent.name = "p";
  parent.col("id", ColumnType::kInt64, false);
  parent.col("payload", ColumnType::kString);
  parent.primary_key = {"id"};
  EXPECT_TRUE(schema.add_table(parent).is_ok());
  TableDef child;
  child.name = "c";
  child.col("id", ColumnType::kInt64, false);
  child.col("p_id", ColumnType::kInt64, false);
  child.primary_key = {"id"};
  child.foreign_keys.push_back(ForeignKey{{"p_id"}, "p"});
  EXPECT_TRUE(schema.add_table(child).is_ok());
  return schema;
}

EngineOptions retain_options() {
  EngineOptions options;
  options.retain_wal_records = true;
  return options;
}

TEST(RecoveryTest, CommittedWorkSurvives) {
  const Schema schema = pair_schema();
  Engine engine(schema, retain_options());
  const uint64_t txn = engine.begin_transaction();
  OpCosts costs;
  ASSERT_TRUE(engine.insert_row(txn, 0, {Value::i64(1), Value::str("a")},
                                costs).is_ok());
  ASSERT_TRUE(engine.insert_row(txn, 1, {Value::i64(10), Value::i64(1)},
                                costs).is_ok());
  ASSERT_TRUE(engine.commit(txn).is_ok());

  RecoveryStats stats;
  const auto recovered = recover_from_wal(schema, engine.wal_records(),
                                          EngineOptions{}, &stats);
  ASSERT_TRUE(recovered.is_ok()) << recovered.status().to_string();
  EXPECT_EQ(stats.rows_replayed, 2);
  EXPECT_EQ(stats.transactions_committed, 1);
  EXPECT_TRUE(engines_equivalent(engine, **recovered).is_ok());
  EXPECT_TRUE((*recovered)->verify_integrity().is_ok());
}

TEST(RecoveryTest, UncommittedWorkIsDiscarded) {
  const Schema schema = pair_schema();
  Engine engine(schema, retain_options());
  const uint64_t committed = engine.begin_transaction();
  OpCosts costs;
  ASSERT_TRUE(engine.insert_row(committed, 0, {Value::i64(1), Value::str("a")},
                                costs).is_ok());
  ASSERT_TRUE(engine.commit(committed).is_ok());
  // A second transaction inserts but never commits ("crash").
  const uint64_t torn = engine.begin_transaction();
  ASSERT_TRUE(engine.insert_row(torn, 0, {Value::i64(2), Value::str("b")},
                                costs).is_ok());

  RecoveryStats stats;
  const auto recovered = recover_from_wal(schema, engine.wal_records(),
                                          EngineOptions{}, &stats);
  ASSERT_TRUE(recovered.is_ok());
  EXPECT_EQ((*recovered)->row_count(0), 1);
  EXPECT_TRUE((*recovered)->pk_lookup(0, {Value::i64(1)}).is_ok());
  EXPECT_FALSE((*recovered)->pk_lookup(0, {Value::i64(2)}).is_ok());
  EXPECT_EQ(stats.rows_discarded, 1);
  EXPECT_EQ(stats.transactions_discarded, 1);
  // Tidy up the open transaction so the engine tears down cleanly.
  ASSERT_TRUE(engine.rollback(torn).is_ok());
}

TEST(RecoveryTest, RolledBackWorkIsDiscarded) {
  const Schema schema = pair_schema();
  Engine engine(schema, retain_options());
  OpCosts costs;
  const uint64_t doomed = engine.begin_transaction();
  ASSERT_TRUE(engine.insert_row(doomed, 0, {Value::i64(7), Value::str("x")},
                                costs).is_ok());
  ASSERT_TRUE(engine.rollback(doomed).is_ok());
  const uint64_t kept = engine.begin_transaction();
  ASSERT_TRUE(engine.insert_row(kept, 0, {Value::i64(8), Value::str("y")},
                                costs).is_ok());
  ASSERT_TRUE(engine.commit(kept).is_ok());

  const auto recovered = recover_from_wal(schema, engine.wal_records());
  ASSERT_TRUE(recovered.is_ok());
  EXPECT_EQ((*recovered)->row_count(0), 1);
  EXPECT_FALSE((*recovered)->pk_lookup(0, {Value::i64(7)}).is_ok());
  EXPECT_TRUE(engines_equivalent(engine, **recovered).is_ok());
}

TEST(RecoveryTest, EmptyLogRecoversEmptyEngine) {
  const Schema schema = pair_schema();
  const auto recovered = recover_from_wal(schema, {});
  ASSERT_TRUE(recovered.is_ok());
  EXPECT_EQ((*recovered)->total_rows(), 0);
}

TEST(RecoveryTest, FullLoaderRunRoundTrips) {
  // A real bulk load — with error rows skipped mid-batch — replays from the
  // WAL into an equivalent repository.
  const Schema schema = catalog::make_pq_schema();
  EngineOptions options = retain_options();
  Engine engine(schema, options);
  client::DirectSession session(engine);
  core::BulkLoaderOptions loader_options;
  loader_options.commit_every_cycles = 2;  // several commit boundaries
  core::BulkLoader loader(session, schema, loader_options);
  ASSERT_TRUE(loader
                  .load_text("reference",
                             catalog::CatalogGenerator::reference_file().text)
                  .is_ok());
  catalog::FileSpec spec;
  spec.seed = 404;
  spec.unit_id = 44;
  spec.target_bytes = 64 * 1024;
  spec.error_rate = 0.05;
  const auto file = catalog::CatalogGenerator::generate(spec);
  const auto report = loader.load_text("dirty.cat", file.text);
  ASSERT_TRUE(report.is_ok());
  ASSERT_GT(report->rows_skipped_server, 0);  // recovery under mid-batch skips

  RecoveryStats stats;
  const auto recovered =
      recover_from_wal(schema, engine.wal_records(), EngineOptions{}, &stats);
  ASSERT_TRUE(recovered.is_ok()) << recovered.status().to_string();
  EXPECT_EQ(stats.rows_replayed, engine.total_rows());
  EXPECT_TRUE(engines_equivalent(engine, **recovered).is_ok());
  EXPECT_TRUE((*recovered)->verify_integrity().is_ok());
}

TEST(RecoveryTest, EquivalenceDetectsDifferences) {
  const Schema schema = pair_schema();
  Engine a(schema), b(schema);
  OpCosts costs;
  const uint64_t txn_a = a.begin_transaction();
  ASSERT_TRUE(a.insert_row(txn_a, 0, {Value::i64(1), Value::str("x")}, costs)
                  .is_ok());
  ASSERT_TRUE(a.commit(txn_a).is_ok());
  // b empty: count mismatch.
  EXPECT_FALSE(engines_equivalent(a, b).is_ok());
  // b with different content at the same PK: content mismatch.
  const uint64_t txn_b = b.begin_transaction();
  ASSERT_TRUE(b.insert_row(txn_b, 0, {Value::i64(1), Value::str("y")}, costs)
                  .is_ok());
  ASSERT_TRUE(b.commit(txn_b).is_ok());
  EXPECT_FALSE(engines_equivalent(a, b).is_ok());
}

}  // namespace
}  // namespace sky::db
