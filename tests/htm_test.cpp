// HTM tests: vector math, id structure invariants (prefix property, depth
// ranges, round trips), containment, and cone-cover correctness properties.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "htm/htm.h"

namespace sky::htm {
namespace {

Vec3 random_direction(Rng& rng) {
  // Uniform on the sphere via z/phi.
  const double z = rng.uniform_range(-1.0, 1.0);
  const double phi = rng.uniform_range(0.0, 2 * 3.14159265358979323846);
  const double r = std::sqrt(std::max(0.0, 1.0 - z * z));
  return {r * std::cos(phi), r * std::sin(phi), z};
}

// ------------------------------------------------------------ vector math ---

TEST(HtmVectorTest, RaDecRoundTrip) {
  for (double ra : {0.0, 45.0, 123.456, 270.0, 359.9}) {
    for (double dec : {-89.0, -30.0, 0.0, 15.5, 89.0}) {
      const Vec3 v = radec_to_vector(ra, dec);
      EXPECT_NEAR(v.norm(), 1.0, 1e-12);
      double ra_out = 0, dec_out = 0;
      vector_to_radec(v, &ra_out, &dec_out);
      EXPECT_NEAR(ra_out, ra, 1e-9);
      EXPECT_NEAR(dec_out, dec, 1e-9);
    }
  }
}

TEST(HtmVectorTest, AngularDistance) {
  const Vec3 x = radec_to_vector(0, 0);
  EXPECT_NEAR(angular_distance_deg(x, radec_to_vector(0, 0)), 0.0, 1e-9);
  EXPECT_NEAR(angular_distance_deg(x, radec_to_vector(90, 0)), 90.0, 1e-9);
  EXPECT_NEAR(angular_distance_deg(x, radec_to_vector(180, 0)), 180.0, 1e-9);
  EXPECT_NEAR(angular_distance_deg(x, radec_to_vector(0, 90)), 90.0, 1e-9);
  // Tiny separations are resolved accurately.
  EXPECT_NEAR(angular_distance_deg(x, radec_to_vector(1e-5, 0)), 1e-5, 1e-9);
}

TEST(HtmVectorTest, CrossAndDot) {
  const Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
  const Vec3 c = x.cross(y);
  EXPECT_NEAR(c.x, z.x, 1e-15);
  EXPECT_NEAR(c.y, z.y, 1e-15);
  EXPECT_NEAR(c.z, z.z, 1e-15);
  EXPECT_DOUBLE_EQ(x.dot(y), 0.0);
}

// ------------------------------------------------------------ id structure ---

TEST(HtmIdTest, RootIdsAndDepthRanges) {
  for (const Trixel& root : root_trixels()) {
    EXPECT_GE(root.id, 8u);
    EXPECT_LT(root.id, 16u);
    EXPECT_EQ(depth_of_id(root.id).value(), 0);
  }
  EXPECT_EQ(depth_of_id(32).value(), 1);   // 8 * 4
  EXPECT_EQ(depth_of_id(63).value(), 1);   // 16 * 4 - 1
  EXPECT_FALSE(depth_of_id(0).is_ok());
  EXPECT_FALSE(depth_of_id(7).is_ok());
}

TEST(HtmIdTest, IdWithinDepthRange) {
  Rng rng(5);
  for (int depth : {0, 1, 5, 10, kDefaultDepth}) {
    for (int i = 0; i < 50; ++i) {
      const uint64_t id = htm_id(random_direction(rng), depth);
      const uint64_t lo = 8ULL << (2 * depth);
      const uint64_t hi = 16ULL << (2 * depth);
      EXPECT_GE(id, lo);
      EXPECT_LT(id, hi);
      EXPECT_EQ(depth_of_id(id).value(), depth);
    }
  }
}

TEST(HtmIdTest, PrefixProperty) {
  // The depth-d id is a prefix of the depth-(d+1) id: parent = child >> 2.
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    const Vec3 p = random_direction(rng);
    for (int depth = 0; depth < 12; ++depth) {
      const uint64_t coarse = htm_id(p, depth);
      const uint64_t fine = htm_id(p, depth + 1);
      EXPECT_EQ(fine >> 2, coarse);
    }
  }
}

TEST(HtmIdTest, ContainmentRoundTrip) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const Vec3 p = random_direction(rng);
    const uint64_t id = htm_id(p, 10);
    const auto contains = id_contains(id, p);
    ASSERT_TRUE(contains.is_ok());
    EXPECT_TRUE(*contains);
  }
}

TEST(HtmIdTest, TrixelFromIdRoundTrip) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    const uint64_t id = htm_id(random_direction(rng), 8);
    const auto trixel = trixel_from_id(id);
    ASSERT_TRUE(trixel.is_ok());
    EXPECT_EQ(trixel->id, id);
    for (const Vec3& v : trixel->v) EXPECT_NEAR(v.norm(), 1.0, 1e-12);
  }
  EXPECT_FALSE(trixel_from_id(3).is_ok());
}

TEST(HtmIdTest, NameRoundTrip) {
  EXPECT_EQ(id_to_name(8).value(), "S0");
  EXPECT_EQ(id_to_name(15).value(), "N3");
  EXPECT_EQ(id_to_name(8 * 4 + 2).value(), "S02");
  EXPECT_EQ(name_to_id("S0").value(), 8u);
  EXPECT_EQ(name_to_id("N3").value(), 15u);
  EXPECT_EQ(name_to_id("N31").value(), 15u * 4 + 1);
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    const uint64_t id = htm_id(random_direction(rng), 12);
    EXPECT_EQ(name_to_id(id_to_name(id).value()).value(), id);
  }
  EXPECT_FALSE(name_to_id("X0").is_ok());
  EXPECT_FALSE(name_to_id("N").is_ok());
  EXPECT_FALSE(name_to_id("N4").is_ok());
  EXPECT_FALSE(name_to_id("N05x").is_ok());
}

TEST(HtmIdTest, DistinctDirectionsSeparateAtDepth) {
  // Two points ~1 degree apart must land in different depth-10 trixels
  // (depth-10 trixels are ~0.1 degrees across).
  const uint64_t a = htm_id_radec(10.0, 10.0, 10);
  const uint64_t b = htm_id_radec(11.0, 10.0, 10);
  EXPECT_NE(a, b);
}

TEST(HtmIdTest, NeighborhoodLocality) {
  // Points very close together share a deep id.
  const uint64_t a = htm_id_radec(45.0, 20.0, 8);
  const uint64_t b = htm_id_radec(45.0 + 1e-9, 20.0 + 1e-9, 8);
  EXPECT_EQ(a, b);
}

TEST(HtmIdTest, EveryRootClaimsItsCenter) {
  for (const Trixel& root : root_trixels()) {
    const Vec3 center =
        (root.v[0] + root.v[1] + root.v[2]).normalized();
    EXPECT_EQ(htm_id(center, 0), root.id);
  }
}

// -------------------------------------------------------------- cone cover ---

bool ranges_cover(const std::vector<IdRange>& ranges, uint64_t id) {
  for (const IdRange& range : ranges) {
    if (id >= range.first && id < range.last) return true;
  }
  return false;
}

TEST(ConeCoverTest, RangesSortedDisjointCoalesced) {
  const auto ranges = cone_cover(radec_to_vector(30, 40), 2.0, 8);
  ASSERT_FALSE(ranges.empty());
  for (size_t i = 0; i < ranges.size(); ++i) {
    EXPECT_LT(ranges[i].first, ranges[i].last);
    if (i > 0) {
      EXPECT_GT(ranges[i].first, ranges[i - 1].last);
    }
  }
}

TEST(ConeCoverTest, CenterAlwaysCovered) {
  Rng rng(10);
  for (int i = 0; i < 50; ++i) {
    const Vec3 center = random_direction(rng);
    const auto ranges = cone_cover(center, 1.0, 10);
    EXPECT_TRUE(ranges_cover(ranges, htm_id(center, 10)));
  }
}

class ConeCoverProperty : public ::testing::TestWithParam<double> {};

TEST_P(ConeCoverProperty, EveryInsidePointCovered) {
  const double radius = GetParam();
  Rng rng(static_cast<uint64_t>(radius * 1000) + 11);
  const int depth = 9;
  for (int trial = 0; trial < 20; ++trial) {
    const Vec3 center = random_direction(rng);
    const auto ranges = cone_cover(center, radius, depth);
    // Sample points inside the cap; all must fall in covered trixels.
    for (int i = 0; i < 50; ++i) {
      double ra = 0, dec = 0;
      vector_to_radec(center, &ra, &dec);
      // Random offset within the cap (crude but inside by construction).
      const double t = rng.uniform_range(0.0, radius * 0.99);
      const double bearing = rng.uniform_range(0.0, 360.0);
      // Walk t degrees along the bearing using the tangent basis.
      const Vec3 north{0, 0, 1};
      Vec3 east = north.cross(center);
      if (east.norm() < 1e-9) east = Vec3{0, 1, 0};
      east = east.normalized();
      const Vec3 up = center.cross(east).normalized();
      const double tr = t * 3.14159265358979323846 / 180.0;
      const double br = bearing * 3.14159265358979323846 / 180.0;
      const Vec3 point =
          (center * std::cos(tr) +
           (east * std::cos(br) + up * std::sin(br)) * std::sin(tr))
              .normalized();
      ASSERT_LE(angular_distance_deg(center, point), radius + 1e-9);
      EXPECT_TRUE(ranges_cover(ranges, htm_id(point, depth)))
          << "radius=" << radius << " trial=" << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Radii, ConeCoverProperty,
                         ::testing::Values(0.05, 0.5, 2.0, 10.0, 45.0));

TEST(ConeCoverTest, SmallConeIsSmall) {
  // A 0.1-degree cone at depth 8 must not cover a large fraction of the sky.
  const auto ranges = cone_cover(radec_to_vector(100, -30), 0.1, 8);
  uint64_t covered = 0;
  for (const IdRange& range : ranges) covered += range.last - range.first;
  const uint64_t total = 8ULL << (2 * 8);  // number of depth-8 trixels
  EXPECT_LT(covered, total / 1000);
}

TEST(ConeCoverTest, FullSkyRadiusCoversEverything) {
  const auto ranges = cone_cover(radec_to_vector(0, 0), 90.0, 4);
  uint64_t covered = 0;
  for (const IdRange& range : ranges) covered += range.last - range.first;
  // A 90-degree cap is half the sphere; cover must be at least that.
  const uint64_t total = 8ULL << (2 * 4);
  EXPECT_GE(covered, total / 2);
}

TEST(SolidAngleTest, RootTrixelsTileTheSphere) {
  // Eight root trixels cover 4*pi steradians exactly.
  double total = 0;
  for (const Trixel& root : root_trixels()) {
    const double area = trixel_solid_angle_sr(root);
    EXPECT_NEAR(area, 4.0 * 3.14159265358979323846 / 8.0, 1e-9);
    total += area;
  }
  EXPECT_NEAR(total, 4.0 * 3.14159265358979323846, 1e-9);
}

TEST(SolidAngleTest, ChildrenPartitionTheParent) {
  // The four children of any trixel tile it (areas sum to the parent's).
  Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    const uint64_t id = htm_id(random_direction(rng), 5);
    const auto parent = trixel_from_id(id);
    ASSERT_TRUE(parent.is_ok());
    double children_total = 0;
    for (uint64_t k = 0; k < 4; ++k) {
      const auto child = trixel_from_id(id * 4 + k);
      ASSERT_TRUE(child.is_ok());
      children_total += trixel_solid_angle_sr(*child);
    }
    EXPECT_NEAR(children_total, trixel_solid_angle_sr(*parent), 1e-9);
  }
}

TEST(SolidAngleTest, CapArea) {
  EXPECT_NEAR(cap_solid_angle_sr(90.0), 2.0 * 3.14159265358979323846, 1e-9);
  EXPECT_NEAR(cap_solid_angle_sr(0.0), 0.0, 1e-12);
  // Small-angle approximation: pi * r^2.
  const double r = 0.5 * 3.14159265358979323846 / 180.0;
  EXPECT_NEAR(cap_solid_angle_sr(0.5),
              3.14159265358979323846 * r * r, 1e-8);
}

TEST(ConeCoverTest, CoverIsReasonablyTight) {
  // The cover's total trixel area must not blow up relative to the cap:
  // at a depth where trixels are much smaller than the cap, the cover stays
  // within a small constant factor of the cap area.
  Rng rng(78);
  for (int trial = 0; trial < 10; ++trial) {
    const Vec3 center = random_direction(rng);
    const double radius = 2.0;
    const int depth = 10;  // trixel edge ~0.1 deg << radius
    double covered = 0;
    for (const IdRange& range : cone_cover(center, radius, depth)) {
      for (uint64_t id = range.first; id < range.last; ++id) {
        covered += trixel_solid_angle_sr(*trixel_from_id(id));
      }
    }
    const double cap = cap_solid_angle_sr(radius);
    EXPECT_GE(covered, cap * 0.999);  // covers the cap
    EXPECT_LE(covered, cap * 1.6);    // without gross overshoot
  }
}

TEST(ConeCoverTest, ZeroRadiusStillFindsHostTrixel) {
  const Vec3 p = radec_to_vector(222.2, -33.3);
  const auto ranges = cone_cover(p, 0.0, 12);
  EXPECT_TRUE(ranges_cover(ranges, htm_id(p, 12)));
}

// ------------------------------------------------------- edge geometry ---

TEST(HtmIdTest, PolesProduceValidIds) {
  // The poles are root-trixel corners (four trixels meet there), so the id
  // itself may tie-break either way — but it must stay a valid id of the
  // requested depth, at every depth and any nominal ra.
  for (int depth : {0, 4, 10, kDefaultDepth}) {
    const uint64_t lo = 8ULL << (2 * depth);
    const uint64_t hi = 16ULL << (2 * depth);
    for (double ra : {0.0, 12.3, 181.5, 359.999}) {
      for (double dec : {90.0, -90.0}) {
        const uint64_t id = htm_id_radec(ra, dec, depth);
        EXPECT_GE(id, lo);
        EXPECT_LT(id, hi);
        EXPECT_EQ(depth_of_id(id).value(), depth);
      }
    }
  }
}

TEST(ConeCoverTest, PolarCapCoversAllRightAscensions) {
  // A cap centered exactly on a pole touches every meridian; the cover
  // must hold points at every ra near the pole and stay sorted/disjoint.
  const int depth = 8;
  for (const double pole : {90.0, -90.0}) {
    const auto ranges = cone_cover(radec_to_vector(0.0, pole), 1.0, depth);
    ASSERT_FALSE(ranges.empty());
    for (size_t i = 1; i < ranges.size(); ++i) {
      EXPECT_GT(ranges[i].first, ranges[i - 1].last);
    }
    const double dec = pole > 0 ? 89.5 : -89.5;
    for (double ra = 0.0; ra < 360.0; ra += 7.3) {
      EXPECT_TRUE(ranges_cover(ranges, htm_id_radec(ra, dec, depth)))
          << "pole=" << pole << " ra=" << ra;
    }
  }
}

TEST(ConeCoverTest, RaWrapCoversAcrossZeroMeridian) {
  // A cap centered just east of ra=0 reaches west of the wrap; points on
  // both sides of the 0/360 seam (including ra=360 itself) are covered.
  const int depth = 10;
  const auto ranges = cone_cover(radec_to_vector(0.25, 20.0), 1.0, depth);
  for (double ra : {359.5, 359.9, 0.0, 0.9, 360.0}) {
    EXPECT_TRUE(ranges_cover(ranges, htm_id_radec(ra, 20.0, depth)))
        << "ra=" << ra;
  }
}

TEST(ConeCoverTest, RadiusNinetyDegreesAndBeyond) {
  const int depth = 4;
  const uint64_t total = 8ULL << (2 * depth);
  // radius 180 is the whole sphere: every trixel is covered, and since
  // depth-4 ids are contiguous the coalescer must fold the cover into the
  // single range [8*4^4, 16*4^4).
  {
    const auto ranges = cone_cover(radec_to_vector(10, 10), 180.0, depth);
    uint64_t covered = 0;
    for (const IdRange& range : ranges) covered += range.last - range.first;
    EXPECT_EQ(covered, total);
    EXPECT_EQ(ranges.size(), 1u);
  }
  // A 120-degree cap is 3/4 of the sphere, and its antipode is excludable.
  {
    const Vec3 center = radec_to_vector(10, 10);
    const auto ranges = cone_cover(center, 120.0, depth);
    uint64_t covered = 0;
    for (const IdRange& range : ranges) covered += range.last - range.first;
    EXPECT_GE(covered, (total * 3) / 4);
    EXPECT_LT(covered, total);
    // Points just inside the rim are covered.
    Rng rng(21);
    for (int i = 0; i < 200; ++i) {
      const Vec3 p = random_direction(rng);
      if (angular_distance_deg(center, p) <= 119.0) {
        EXPECT_TRUE(ranges_cover(ranges, htm_id(p, depth)));
      }
    }
  }
}

TEST(ConeCoverTest, MatchesBruteForceTrixelOracle) {
  // Classify every depth-4 trixel against the cap by direct geometry:
  // any corner / edge-midpoint / center inside the cap is an intersection
  // witness (the cover MUST include the trixel); a trixel whose center is
  // farther than radius + its circumradius cannot intersect (the cover
  // MUST exclude it). Trixels between the two bounds are the cover's
  // conservative slack and may go either way.
  Rng rng(123);
  const int depth = 4;
  const uint64_t lo = 8ULL << (2 * depth);
  const uint64_t hi = 16ULL << (2 * depth);
  for (int trial = 0; trial < 5; ++trial) {
    const Vec3 center = random_direction(rng);
    const double radius = 7.0 * (trial + 1);  // 7..35 degrees
    const auto ranges = cone_cover(center, radius, depth);
    for (size_t i = 1; i < ranges.size(); ++i) {
      EXPECT_GT(ranges[i].first, ranges[i - 1].last);  // sorted + coalesced
    }
    for (uint64_t id = lo; id < hi; ++id) {
      const auto trixel = trixel_from_id(id);
      ASSERT_TRUE(trixel.is_ok());
      const Vec3 c =
          (trixel->v[0] + trixel->v[1] + trixel->v[2]).normalized();
      std::vector<Vec3> witnesses = {c};
      double circumradius = 0;
      for (size_t k = 0; k < 3; ++k) {
        witnesses.push_back(trixel->v[k]);
        witnesses.push_back(
            (trixel->v[k] + trixel->v[(k + 1) % 3]).normalized());
        circumradius =
            std::max(circumradius, angular_distance_deg(c, trixel->v[k]));
      }
      double nearest_witness = 1e9;
      for (const Vec3& w : witnesses) {
        nearest_witness =
            std::min(nearest_witness, angular_distance_deg(center, w));
      }
      const bool covered = ranges_cover(ranges, id);
      if (nearest_witness <= radius) {
        EXPECT_TRUE(covered) << "id=" << id << " radius=" << radius;
      } else if (angular_distance_deg(center, c) >
                 radius + circumradius + 1e-9) {
        EXPECT_FALSE(covered) << "id=" << id << " radius=" << radius;
      }
    }
  }
}

}  // namespace
}  // namespace sky::htm
