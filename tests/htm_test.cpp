// HTM tests: vector math, id structure invariants (prefix property, depth
// ranges, round trips), containment, and cone-cover correctness properties.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "htm/htm.h"

namespace sky::htm {
namespace {

Vec3 random_direction(Rng& rng) {
  // Uniform on the sphere via z/phi.
  const double z = rng.uniform_range(-1.0, 1.0);
  const double phi = rng.uniform_range(0.0, 2 * 3.14159265358979323846);
  const double r = std::sqrt(std::max(0.0, 1.0 - z * z));
  return {r * std::cos(phi), r * std::sin(phi), z};
}

// ------------------------------------------------------------ vector math ---

TEST(HtmVectorTest, RaDecRoundTrip) {
  for (double ra : {0.0, 45.0, 123.456, 270.0, 359.9}) {
    for (double dec : {-89.0, -30.0, 0.0, 15.5, 89.0}) {
      const Vec3 v = radec_to_vector(ra, dec);
      EXPECT_NEAR(v.norm(), 1.0, 1e-12);
      double ra_out = 0, dec_out = 0;
      vector_to_radec(v, &ra_out, &dec_out);
      EXPECT_NEAR(ra_out, ra, 1e-9);
      EXPECT_NEAR(dec_out, dec, 1e-9);
    }
  }
}

TEST(HtmVectorTest, AngularDistance) {
  const Vec3 x = radec_to_vector(0, 0);
  EXPECT_NEAR(angular_distance_deg(x, radec_to_vector(0, 0)), 0.0, 1e-9);
  EXPECT_NEAR(angular_distance_deg(x, radec_to_vector(90, 0)), 90.0, 1e-9);
  EXPECT_NEAR(angular_distance_deg(x, radec_to_vector(180, 0)), 180.0, 1e-9);
  EXPECT_NEAR(angular_distance_deg(x, radec_to_vector(0, 90)), 90.0, 1e-9);
  // Tiny separations are resolved accurately.
  EXPECT_NEAR(angular_distance_deg(x, radec_to_vector(1e-5, 0)), 1e-5, 1e-9);
}

TEST(HtmVectorTest, CrossAndDot) {
  const Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
  const Vec3 c = x.cross(y);
  EXPECT_NEAR(c.x, z.x, 1e-15);
  EXPECT_NEAR(c.y, z.y, 1e-15);
  EXPECT_NEAR(c.z, z.z, 1e-15);
  EXPECT_DOUBLE_EQ(x.dot(y), 0.0);
}

// ------------------------------------------------------------ id structure ---

TEST(HtmIdTest, RootIdsAndDepthRanges) {
  for (const Trixel& root : root_trixels()) {
    EXPECT_GE(root.id, 8u);
    EXPECT_LT(root.id, 16u);
    EXPECT_EQ(depth_of_id(root.id).value(), 0);
  }
  EXPECT_EQ(depth_of_id(32).value(), 1);   // 8 * 4
  EXPECT_EQ(depth_of_id(63).value(), 1);   // 16 * 4 - 1
  EXPECT_FALSE(depth_of_id(0).is_ok());
  EXPECT_FALSE(depth_of_id(7).is_ok());
}

TEST(HtmIdTest, IdWithinDepthRange) {
  Rng rng(5);
  for (int depth : {0, 1, 5, 10, kDefaultDepth}) {
    for (int i = 0; i < 50; ++i) {
      const uint64_t id = htm_id(random_direction(rng), depth);
      const uint64_t lo = 8ULL << (2 * depth);
      const uint64_t hi = 16ULL << (2 * depth);
      EXPECT_GE(id, lo);
      EXPECT_LT(id, hi);
      EXPECT_EQ(depth_of_id(id).value(), depth);
    }
  }
}

TEST(HtmIdTest, PrefixProperty) {
  // The depth-d id is a prefix of the depth-(d+1) id: parent = child >> 2.
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    const Vec3 p = random_direction(rng);
    for (int depth = 0; depth < 12; ++depth) {
      const uint64_t coarse = htm_id(p, depth);
      const uint64_t fine = htm_id(p, depth + 1);
      EXPECT_EQ(fine >> 2, coarse);
    }
  }
}

TEST(HtmIdTest, ContainmentRoundTrip) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const Vec3 p = random_direction(rng);
    const uint64_t id = htm_id(p, 10);
    const auto contains = id_contains(id, p);
    ASSERT_TRUE(contains.is_ok());
    EXPECT_TRUE(*contains);
  }
}

TEST(HtmIdTest, TrixelFromIdRoundTrip) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    const uint64_t id = htm_id(random_direction(rng), 8);
    const auto trixel = trixel_from_id(id);
    ASSERT_TRUE(trixel.is_ok());
    EXPECT_EQ(trixel->id, id);
    for (const Vec3& v : trixel->v) EXPECT_NEAR(v.norm(), 1.0, 1e-12);
  }
  EXPECT_FALSE(trixel_from_id(3).is_ok());
}

TEST(HtmIdTest, NameRoundTrip) {
  EXPECT_EQ(id_to_name(8).value(), "S0");
  EXPECT_EQ(id_to_name(15).value(), "N3");
  EXPECT_EQ(id_to_name(8 * 4 + 2).value(), "S02");
  EXPECT_EQ(name_to_id("S0").value(), 8u);
  EXPECT_EQ(name_to_id("N3").value(), 15u);
  EXPECT_EQ(name_to_id("N31").value(), 15u * 4 + 1);
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    const uint64_t id = htm_id(random_direction(rng), 12);
    EXPECT_EQ(name_to_id(id_to_name(id).value()).value(), id);
  }
  EXPECT_FALSE(name_to_id("X0").is_ok());
  EXPECT_FALSE(name_to_id("N").is_ok());
  EXPECT_FALSE(name_to_id("N4").is_ok());
  EXPECT_FALSE(name_to_id("N05x").is_ok());
}

TEST(HtmIdTest, DistinctDirectionsSeparateAtDepth) {
  // Two points ~1 degree apart must land in different depth-10 trixels
  // (depth-10 trixels are ~0.1 degrees across).
  const uint64_t a = htm_id_radec(10.0, 10.0, 10);
  const uint64_t b = htm_id_radec(11.0, 10.0, 10);
  EXPECT_NE(a, b);
}

TEST(HtmIdTest, NeighborhoodLocality) {
  // Points very close together share a deep id.
  const uint64_t a = htm_id_radec(45.0, 20.0, 8);
  const uint64_t b = htm_id_radec(45.0 + 1e-9, 20.0 + 1e-9, 8);
  EXPECT_EQ(a, b);
}

TEST(HtmIdTest, EveryRootClaimsItsCenter) {
  for (const Trixel& root : root_trixels()) {
    const Vec3 center =
        (root.v[0] + root.v[1] + root.v[2]).normalized();
    EXPECT_EQ(htm_id(center, 0), root.id);
  }
}

// -------------------------------------------------------------- cone cover ---

bool ranges_cover(const std::vector<IdRange>& ranges, uint64_t id) {
  for (const IdRange& range : ranges) {
    if (id >= range.first && id < range.last) return true;
  }
  return false;
}

TEST(ConeCoverTest, RangesSortedDisjointCoalesced) {
  const auto ranges = cone_cover(radec_to_vector(30, 40), 2.0, 8);
  ASSERT_FALSE(ranges.empty());
  for (size_t i = 0; i < ranges.size(); ++i) {
    EXPECT_LT(ranges[i].first, ranges[i].last);
    if (i > 0) {
      EXPECT_GT(ranges[i].first, ranges[i - 1].last);
    }
  }
}

TEST(ConeCoverTest, CenterAlwaysCovered) {
  Rng rng(10);
  for (int i = 0; i < 50; ++i) {
    const Vec3 center = random_direction(rng);
    const auto ranges = cone_cover(center, 1.0, 10);
    EXPECT_TRUE(ranges_cover(ranges, htm_id(center, 10)));
  }
}

class ConeCoverProperty : public ::testing::TestWithParam<double> {};

TEST_P(ConeCoverProperty, EveryInsidePointCovered) {
  const double radius = GetParam();
  Rng rng(static_cast<uint64_t>(radius * 1000) + 11);
  const int depth = 9;
  for (int trial = 0; trial < 20; ++trial) {
    const Vec3 center = random_direction(rng);
    const auto ranges = cone_cover(center, radius, depth);
    // Sample points inside the cap; all must fall in covered trixels.
    for (int i = 0; i < 50; ++i) {
      double ra = 0, dec = 0;
      vector_to_radec(center, &ra, &dec);
      // Random offset within the cap (crude but inside by construction).
      const double t = rng.uniform_range(0.0, radius * 0.99);
      const double bearing = rng.uniform_range(0.0, 360.0);
      // Walk t degrees along the bearing using the tangent basis.
      const Vec3 north{0, 0, 1};
      Vec3 east = north.cross(center);
      if (east.norm() < 1e-9) east = Vec3{0, 1, 0};
      east = east.normalized();
      const Vec3 up = center.cross(east).normalized();
      const double tr = t * 3.14159265358979323846 / 180.0;
      const double br = bearing * 3.14159265358979323846 / 180.0;
      const Vec3 point =
          (center * std::cos(tr) +
           (east * std::cos(br) + up * std::sin(br)) * std::sin(tr))
              .normalized();
      ASSERT_LE(angular_distance_deg(center, point), radius + 1e-9);
      EXPECT_TRUE(ranges_cover(ranges, htm_id(point, depth)))
          << "radius=" << radius << " trial=" << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Radii, ConeCoverProperty,
                         ::testing::Values(0.05, 0.5, 2.0, 10.0, 45.0));

TEST(ConeCoverTest, SmallConeIsSmall) {
  // A 0.1-degree cone at depth 8 must not cover a large fraction of the sky.
  const auto ranges = cone_cover(radec_to_vector(100, -30), 0.1, 8);
  uint64_t covered = 0;
  for (const IdRange& range : ranges) covered += range.last - range.first;
  const uint64_t total = 8ULL << (2 * 8);  // number of depth-8 trixels
  EXPECT_LT(covered, total / 1000);
}

TEST(ConeCoverTest, FullSkyRadiusCoversEverything) {
  const auto ranges = cone_cover(radec_to_vector(0, 0), 90.0, 4);
  uint64_t covered = 0;
  for (const IdRange& range : ranges) covered += range.last - range.first;
  // A 90-degree cap is half the sphere; cover must be at least that.
  const uint64_t total = 8ULL << (2 * 4);
  EXPECT_GE(covered, total / 2);
}

TEST(SolidAngleTest, RootTrixelsTileTheSphere) {
  // Eight root trixels cover 4*pi steradians exactly.
  double total = 0;
  for (const Trixel& root : root_trixels()) {
    const double area = trixel_solid_angle_sr(root);
    EXPECT_NEAR(area, 4.0 * 3.14159265358979323846 / 8.0, 1e-9);
    total += area;
  }
  EXPECT_NEAR(total, 4.0 * 3.14159265358979323846, 1e-9);
}

TEST(SolidAngleTest, ChildrenPartitionTheParent) {
  // The four children of any trixel tile it (areas sum to the parent's).
  Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    const uint64_t id = htm_id(random_direction(rng), 5);
    const auto parent = trixel_from_id(id);
    ASSERT_TRUE(parent.is_ok());
    double children_total = 0;
    for (uint64_t k = 0; k < 4; ++k) {
      const auto child = trixel_from_id(id * 4 + k);
      ASSERT_TRUE(child.is_ok());
      children_total += trixel_solid_angle_sr(*child);
    }
    EXPECT_NEAR(children_total, trixel_solid_angle_sr(*parent), 1e-9);
  }
}

TEST(SolidAngleTest, CapArea) {
  EXPECT_NEAR(cap_solid_angle_sr(90.0), 2.0 * 3.14159265358979323846, 1e-9);
  EXPECT_NEAR(cap_solid_angle_sr(0.0), 0.0, 1e-12);
  // Small-angle approximation: pi * r^2.
  const double r = 0.5 * 3.14159265358979323846 / 180.0;
  EXPECT_NEAR(cap_solid_angle_sr(0.5),
              3.14159265358979323846 * r * r, 1e-8);
}

TEST(ConeCoverTest, CoverIsReasonablyTight) {
  // The cover's total trixel area must not blow up relative to the cap:
  // at a depth where trixels are much smaller than the cap, the cover stays
  // within a small constant factor of the cap area.
  Rng rng(78);
  for (int trial = 0; trial < 10; ++trial) {
    const Vec3 center = random_direction(rng);
    const double radius = 2.0;
    const int depth = 10;  // trixel edge ~0.1 deg << radius
    double covered = 0;
    for (const IdRange& range : cone_cover(center, radius, depth)) {
      for (uint64_t id = range.first; id < range.last; ++id) {
        covered += trixel_solid_angle_sr(*trixel_from_id(id));
      }
    }
    const double cap = cap_solid_angle_sr(radius);
    EXPECT_GE(covered, cap * 0.999);  // covers the cap
    EXPECT_LE(covered, cap * 1.6);    // without gross overshoot
  }
}

TEST(ConeCoverTest, ZeroRadiusStillFindsHostTrixel) {
  const Vec3 p = radec_to_vector(222.2, -33.3);
  const auto ranges = cone_cover(p, 0.0, 12);
  EXPECT_TRUE(ranges_cover(ranges, htm_id(p, 12)));
}

}  // namespace
}  // namespace sky::htm
