// Catalog substrate tests: the 23-table schema, tag mapping, generator
// determinism and interleave pattern, parser behaviour including the
// computed htmid, error injection, and parse-and-load round trips.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "catalog/generator.h"
#include "catalog/parser.h"
#include "catalog/pq_schema.h"
#include "common/strings.h"
#include "htm/htm.h"

namespace sky::catalog {
namespace {

// ---------------------------------------------------------------- schema ---

TEST(PqSchemaTest, HasTwentyThreeTables) {
  const db::Schema schema = make_pq_schema();
  EXPECT_EQ(schema.table_count(), 23);
}

TEST(PqSchemaTest, AnchorTablesFromThePaperExist) {
  const db::Schema schema = make_pq_schema();
  for (const char* name :
       {"observations", "ccd_columns", "ccd_frames", "ccd_frame_apertures",
        "objects", "fingers"}) {
    EXPECT_TRUE(schema.has_table(name)) << name;
  }
}

TEST(PqSchemaTest, ObjectsCarriesTheTwoStudyIndexes) {
  const db::Schema schema = make_pq_schema();
  const db::TableDef& objects =
      schema.table(schema.table_id("objects").value());
  ASSERT_EQ(objects.indexes.size(), 2u);
  EXPECT_EQ(objects.indexes[0].name, kIndexHtmid);
  EXPECT_EQ(objects.indexes[0].columns.size(), 1u);
  EXPECT_EQ(objects.indexes[1].name, kIndexRaDecMag);
  EXPECT_EQ(objects.indexes[1].columns.size(), 3u);
  // The composite columns are all doubles (the "3 float attributes").
  for (const std::string& col : objects.indexes[1].columns) {
    const int idx = objects.column_index(col);
    EXPECT_EQ(objects.columns[static_cast<size_t>(idx)].type,
              db::ColumnType::kDouble);
  }
}

TEST(PqSchemaTest, DeclarationOrderIsTopological) {
  const db::Schema schema = make_pq_schema();
  for (const auto& [child, parent] : schema.fk_edges()) {
    EXPECT_GT(child, parent);
  }
  // The FK graph is deep: objects sit under a >= 3-level parent chain.
  const uint32_t objects = schema.table_id("objects").value();
  const uint32_t frames = schema.table_id("ccd_frames").value();
  const uint32_t ccds = schema.table_id("ccd_columns").value();
  const uint32_t obs = schema.table_id("observations").value();
  EXPECT_GT(objects, frames);
  EXPECT_GT(frames, ccds);
  EXPECT_GT(ccds, obs);
}

TEST(PqSchemaTest, TagMappingCoversLoadableTables) {
  const db::Schema schema = make_pq_schema();
  std::set<std::string_view> mapped;
  for (const TagMapping& mapping : tag_mappings()) {
    EXPECT_TRUE(schema.has_table(mapping.table)) << mapping.table;
    EXPECT_EQ(mapping.tag.size(), 3u);
    EXPECT_TRUE(mapped.insert(mapping.table).second) << mapping.table;
  }
  // Every table except the loader-written audit table has a tag.
  EXPECT_EQ(mapped.size(), 22u);
  EXPECT_EQ(mapped.count("load_audit"), 0u);
  EXPECT_EQ(table_for_tag("OBJ"), "objects");
  EXPECT_EQ(table_for_tag("???"), "");
}

// -------------------------------------------------------------- generator ---

TEST(GeneratorTest, DeterministicFromSeed) {
  FileSpec spec;
  spec.name = "t.cat";
  spec.seed = 7;
  spec.unit_id = 3;
  spec.target_bytes = 64 * 1024;
  const GeneratedFile a = CatalogGenerator::generate(spec);
  const GeneratedFile b = CatalogGenerator::generate(spec);
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.data_lines, b.data_lines);
  spec.seed = 8;
  const GeneratedFile c = CatalogGenerator::generate(spec);
  EXPECT_NE(a.text, c.text);
}

TEST(GeneratorTest, HitsByteTarget) {
  FileSpec spec;
  spec.seed = 11;
  spec.unit_id = 1;
  spec.target_bytes = 100 * 1024;
  const GeneratedFile file = CatalogGenerator::generate(spec);
  EXPECT_GE(static_cast<int64_t>(file.text.size()), spec.target_bytes);
  // Within one frame-group of the target.
  EXPECT_LT(static_cast<int64_t>(file.text.size()),
            spec.target_bytes + 64 * 1024);
}

TEST(GeneratorTest, InterleavePatternMatchesPaper) {
  FileSpec spec;
  spec.seed = 13;
  spec.unit_id = 2;
  spec.target_bytes = 32 * 1024;
  const GeneratedFile file = CatalogGenerator::generate(spec);
  // Each FRM row is immediately followed by exactly four APR rows; each OBJ
  // row by exactly four FNG rows.
  std::vector<std::string> tags;
  std::istringstream stream(file.text);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty() || line[0] == '#') continue;
    tags.push_back(line.substr(0, 3));
  }
  for (size_t i = 0; i < tags.size(); ++i) {
    if (tags[i] == "FRM") {
      ASSERT_LT(i + 4, tags.size());
      for (size_t k = 1; k <= 4; ++k) EXPECT_EQ(tags[i + k], "APR") << i;
    }
    if (tags[i] == "OBJ") {
      ASSERT_LT(i + 4, tags.size());
      for (size_t k = 1; k <= 4; ++k) EXPECT_EQ(tags[i + k], "FNG") << i;
    }
  }
}

TEST(GeneratorTest, CleanFileCountsRowsPerTable) {
  FileSpec spec;
  spec.seed = 17;
  spec.unit_id = 4;
  spec.target_bytes = 48 * 1024;
  const GeneratedFile file = CatalogGenerator::generate(spec);
  EXPECT_EQ(file.injected_errors, 0);
  int64_t total = 0;
  for (const auto& [table, count] : file.clean_rows_per_table) {
    total += count;
  }
  EXPECT_EQ(total, file.data_lines);
  EXPECT_EQ(file.clean_rows_per_table.at("observations"), 1);
  EXPECT_EQ(file.clean_rows_per_table.at("ccd_columns"), 4);
  // 4 fingers per object.
  EXPECT_EQ(file.clean_rows_per_table.at("fingers"),
            4 * file.clean_rows_per_table.at("objects"));
  // 4 apertures per frame.
  EXPECT_EQ(file.clean_rows_per_table.at("ccd_frame_apertures"),
            4 * file.clean_rows_per_table.at("ccd_frames"));
}

TEST(GeneratorTest, ErrorInjectionRateRoughlyHonored) {
  FileSpec spec;
  spec.seed = 19;
  spec.unit_id = 5;
  spec.target_bytes = 256 * 1024;
  spec.error_rate = 0.05;
  const GeneratedFile file = CatalogGenerator::generate(spec);
  const double observed = static_cast<double>(file.injected_errors) /
                          static_cast<double>(file.data_lines);
  EXPECT_GT(observed, 0.03);
  EXPECT_LT(observed, 0.07);
}

TEST(GeneratorTest, ObservationSpecsVaryInSize) {
  const auto specs =
      CatalogGenerator::observation_specs(21, /*night_id=*/42, 28 * 100'000);
  ASSERT_EQ(specs.size(), static_cast<size_t>(kFilesPerObservation));
  int64_t min_bytes = specs[0].target_bytes, max_bytes = specs[0].target_bytes;
  int64_t total = 0;
  std::set<int64_t> units;
  for (const FileSpec& spec : specs) {
    min_bytes = std::min(min_bytes, spec.target_bytes);
    max_bytes = std::max(max_bytes, spec.target_bytes);
    total += spec.target_bytes;
    units.insert(spec.unit_id);
    EXPECT_FALSE(spec.name.empty());
  }
  EXPECT_EQ(units.size(), specs.size());  // self-contained id spaces
  EXPECT_GT(max_bytes, min_bytes * 2);    // meaningful skew for balancing
  EXPECT_NEAR(static_cast<double>(total), 28.0 * 100'000, 28.0 * 100'000 * 0.02);
}

TEST(GeneratorTest, ShuffledObjectIdsKeepUniqueness) {
  FileSpec spec;
  spec.seed = 23;
  spec.unit_id = 6;
  spec.target_bytes = 64 * 1024;
  spec.shuffle_object_ids = true;
  const GeneratedFile file = CatalogGenerator::generate(spec);
  std::set<int64_t> ids;
  std::istringstream stream(file.text);
  std::string line;
  bool sorted = true;
  int64_t prev = -1;
  while (std::getline(stream, line)) {
    if (!starts_with(line, "OBJ|")) continue;
    const auto fields = split(line, '|');
    const int64_t id = parse_int64(fields[1]).value();
    EXPECT_TRUE(ids.insert(id).second) << "duplicate object id " << id;
    if (id < prev) sorted = false;
    prev = id;
  }
  EXPECT_GT(ids.size(), 100u);
  EXPECT_FALSE(sorted);  // the whole point of the ablation knob
}

TEST(GeneratorTest, ReferenceFileHasAllReferenceTables) {
  const GeneratedFile ref = CatalogGenerator::reference_file();
  EXPECT_EQ(ref.clean_rows_per_table.at("surveys"),
            CatalogGenerator::kSurveyCount);
  EXPECT_EQ(ref.clean_rows_per_table.at("filters"),
            CatalogGenerator::kFilterCount);
  EXPECT_EQ(ref.clean_rows_per_table.at("sky_regions"),
            CatalogGenerator::kRegionCount);
  EXPECT_GT(ref.clean_rows_per_table.at("pipeline_params"), 0);
}

// ----------------------------------------------------------------- parser ---

class ParserTest : public ::testing::Test {
 protected:
  ParserTest() : schema_(make_pq_schema()), parser_(schema_) {}
  db::Schema schema_;
  CatalogParser parser_;
};

TEST_F(ParserTest, SkipsCommentsAndBlanks) {
  EXPECT_FALSE(CatalogParser::is_data_line("# header"));
  EXPECT_FALSE(CatalogParser::is_data_line("   "));
  EXPECT_FALSE(CatalogParser::is_data_line(""));
  EXPECT_TRUE(CatalogParser::is_data_line("OBS|1|2|3"));
}

TEST_F(ParserTest, ParsesSurveyRow) {
  const auto parsed = parser_.parse_line("SUR|1|palomar-quest-1|1059696000");
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->table_id, schema_.table_id("surveys").value());
  ASSERT_EQ(parsed->row.size(), 3u);
  EXPECT_EQ(parsed->row[0].as_i64(), 1);
  EXPECT_EQ(parsed->row[1].as_str(), "palomar-quest-1");
}

TEST_F(ParserTest, ComputesHtmidForObjects) {
  const auto parsed = parser_.parse_line(
      "OBJ|12345|678|120.500000|-15.250000|19.1234|0.010000|100.0|2.5|0.1|"
      "512.0|1024.0");
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const db::TableDef& objects =
      schema_.table(schema_.table_id("objects").value());
  const int htmid_col = objects.column_index("htmid");
  const db::Value& htmid = parsed->row[static_cast<size_t>(htmid_col)];
  ASSERT_FALSE(htmid.is_null());
  const uint64_t expected =
      htm::htm_id_radec(120.5, -15.25, CatalogParser::kHtmDepth);
  EXPECT_EQ(htmid.as_i64(), static_cast<int64_t>(expected));
  EXPECT_EQ(parser_.stats().htmids_computed, 1);
}

TEST_F(ParserTest, MagPrecisionNormalized) {
  const auto parsed = parser_.parse_line(
      "OBJ|1|2|10.000000|5.000000|19.12345678|0.01234567|100.0|2.5|0.1|"
      "1.0|1.0");
  ASSERT_TRUE(parsed.is_ok());
  const db::TableDef& objects =
      schema_.table(schema_.table_id("objects").value());
  EXPECT_DOUBLE_EQ(
      parsed->row[static_cast<size_t>(objects.column_index("mag"))].as_f64(),
      19.1235);
  EXPECT_DOUBLE_EQ(
      parsed->row[static_cast<size_t>(objects.column_index("mag_err"))]
          .as_f64(),
      0.0123);
}

TEST_F(ParserTest, OutOfRangeRaLeavesHtmidNull) {
  // Parser leaves htmid NULL so the server's NOT NULL / check constraints
  // reject the row — errors surface where the paper's recovery engages.
  const auto parsed = parser_.parse_line(
      "OBJ|1|2|999.000000|5.000000|19.0|0.01|100.0|2.5|0.1|1.0|1.0");
  ASSERT_TRUE(parsed.is_ok());
  const db::TableDef& objects =
      schema_.table(schema_.table_id("objects").value());
  EXPECT_TRUE(
      parsed->row[static_cast<size_t>(objects.column_index("htmid"))]
          .is_null());
}

TEST_F(ParserTest, RejectsUnknownTag) {
  const auto parsed = parser_.parse_line("XXX|1|2|3");
  EXPECT_EQ(parsed.status().code(), ErrorCode::kParseError);
  EXPECT_EQ(parser_.stats().parse_errors, 1);
}

TEST_F(ParserTest, RejectsWrongArity) {
  EXPECT_EQ(parser_.parse_line("SUR|1|name").status().code(),
            ErrorCode::kParseError);
  EXPECT_EQ(parser_.parse_line("SUR|1|name|0|extra").status().code(),
            ErrorCode::kParseError);
}

TEST_F(ParserTest, RejectsMalformedNumeric) {
  const auto parsed = parser_.parse_line("SUR|###|name|1000");
  EXPECT_EQ(parsed.status().code(), ErrorCode::kParseError);
}

TEST_F(ParserTest, NullMarkersBecomeNullValues) {
  const auto parsed = parser_.parse_line("SUR|5|name|");
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_TRUE(parsed->row[2].is_null());
}

TEST_F(ParserTest, EveryCleanGeneratedLineParses) {
  FileSpec spec;
  spec.seed = 29;
  spec.unit_id = 7;
  spec.target_bytes = 96 * 1024;
  const GeneratedFile file = CatalogGenerator::generate(spec);
  std::istringstream stream(file.text);
  std::string line;
  std::map<std::string, int64_t> parsed_per_table;
  while (std::getline(stream, line)) {
    if (!CatalogParser::is_data_line(line)) continue;
    const auto parsed = parser_.parse_line(line);
    ASSERT_TRUE(parsed.is_ok())
        << line.substr(0, 60) << " -> " << parsed.status().to_string();
    ++parsed_per_table[schema_.table(parsed->table_id).name];
  }
  EXPECT_EQ(parsed_per_table, file.clean_rows_per_table);
}

TEST_F(ParserTest, CorruptedFileReportsParseErrorsButNeverCrashes) {
  FileSpec spec;
  spec.seed = 31;
  spec.unit_id = 8;
  spec.target_bytes = 128 * 1024;
  spec.error_rate = 0.1;
  const GeneratedFile file = CatalogGenerator::generate(spec);
  std::istringstream stream(file.text);
  std::string line;
  int64_t ok_rows = 0, bad_rows = 0;
  while (std::getline(stream, line)) {
    if (!CatalogParser::is_data_line(line)) continue;
    if (parser_.parse_line(line).is_ok()) {
      ++ok_rows;
    } else {
      ++bad_rows;
    }
  }
  EXPECT_GT(bad_rows, 0);
  // Only the parse-level corruptions (bad numeric, missing field) fail here;
  // duplicate keys / dangling FKs / out-of-range parse fine and fail at the
  // database, so parse failures < injected errors.
  EXPECT_LT(bad_rows, file.injected_errors);
  EXPECT_GT(ok_rows, file.data_lines - file.injected_errors);
}

// ------------------------------------------------- columnar block parser ---

// parse_block must be a drop-in replacement for the parse_line loop: same
// surviving rows (values included), same rejected lines, same stats. The
// differential runs a corrupted generated file through both paths.
TEST_F(ParserTest, ParseBlockMatchesParseLineOnCorruptedFile) {
  FileSpec spec;
  spec.seed = 47;
  spec.unit_id = 3;
  spec.target_bytes = 96 * 1024;
  spec.error_rate = 0.08;
  const GeneratedFile file = CatalogGenerator::generate(spec);

  // Row path (the oracle): parse_line gated by is_data_line.
  CatalogParser row_parser(schema_);
  std::vector<ParsedRow> row_rows;
  std::vector<int64_t> row_error_lines;  // 0-based line numbers
  {
    int64_t line_no = 0;
    for (std::string_view line : split_view(file.text, '\n')) {
      if (CatalogParser::is_data_line(line)) {
        auto parsed = row_parser.parse_line(line);
        if (parsed.is_ok()) {
          row_rows.push_back(std::move(*parsed));
        } else {
          row_error_lines.push_back(line_no);
        }
      }
      ++line_no;
    }
  }

  // Columnar path, deliberately odd block size to exercise block seams.
  CatalogParser block_parser(schema_);
  ParsedBlock block;
  std::vector<ParsedRow> col_rows;       // materialized, file order
  std::vector<int64_t> col_error_lines;
  size_t pos = 0;
  int64_t base_line = 0;
  while (pos <= file.text.size()) {
    block_parser.parse_block(file.text, pos, 237, block);
    // Reassemble file order across tables from the per-row line offsets.
    std::vector<std::pair<int64_t, ParsedRow>> in_block;
    for (size_t slot = 0; slot < block.batches.size(); ++slot) {
      const db::ColumnBatch& batch = block.batches[slot];
      for (size_t r = 0; r < batch.size(); ++r) {
        in_block.emplace_back(
            block.row_lines[slot][r],
            ParsedRow{block.table_ids[slot], batch.row(r)});
      }
    }
    std::sort(in_block.begin(), in_block.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (auto& [offset, parsed] : in_block) {
      (void)offset;
      col_rows.push_back(std::move(parsed));
    }
    for (const BlockError& error : block.errors) {
      col_error_lines.push_back(base_line + error.line_offset);
      EXPECT_FALSE(error.status.is_ok());
    }
    base_line += block.lines_consumed;
  }

  // Same surviving rows, same destination tables, same cell values.
  ASSERT_EQ(col_rows.size(), row_rows.size());
  for (size_t i = 0; i < row_rows.size(); ++i) {
    EXPECT_EQ(col_rows[i].table_id, row_rows[i].table_id) << "row " << i;
    ASSERT_EQ(col_rows[i].row.size(), row_rows[i].row.size()) << "row " << i;
    for (size_t c = 0; c < row_rows[i].row.size(); ++c) {
      EXPECT_EQ(col_rows[i].row[c], row_rows[i].row[c])
          << "row " << i << " col " << c;
    }
  }

  // Same rejected lines.
  EXPECT_EQ(col_error_lines, row_error_lines);
  EXPECT_GT(col_error_lines.size(), 0u);

  // Same parser statistics.
  EXPECT_EQ(block_parser.stats().lines, row_parser.stats().lines);
  EXPECT_EQ(block_parser.stats().data_rows, row_parser.stats().data_rows);
  EXPECT_EQ(block_parser.stats().parse_errors,
            row_parser.stats().parse_errors);
  EXPECT_EQ(block_parser.stats().htmids_computed,
            row_parser.stats().htmids_computed);
}

TEST_F(ParserTest, ParseBlockHonorsMaxRowsAndAdvancesPos) {
  FileSpec spec;
  spec.seed = 48;
  spec.unit_id = 4;
  spec.target_bytes = 32 * 1024;
  const GeneratedFile file = CatalogGenerator::generate(spec);
  ParsedBlock block;
  size_t pos = 0;
  int64_t total_rows = 0;
  int64_t total_lines = 0;
  while (pos <= file.text.size()) {
    const size_t before = pos;
    parser_.parse_block(file.text, pos, 100, block);
    EXPECT_GT(pos, before);  // always advances — no infinite loop
    EXPECT_LE(block.data_lines, 100);
    int64_t block_rows = 0;
    for (const db::ColumnBatch& batch : block.batches) {
      block_rows += static_cast<int64_t>(batch.size());
    }
    total_rows += block_rows;
    total_lines += block.lines_consumed;
  }
  // Line accounting matches split(text, '\n') exactly.
  EXPECT_EQ(total_lines,
            static_cast<int64_t>(split(file.text, '\n').size()));
  EXPECT_EQ(total_rows, file.data_lines - parser_.stats().parse_errors);
}

}  // namespace
}  // namespace sky::catalog
