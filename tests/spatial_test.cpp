// Spatial operator battery: the zone cross-match against a brute-force
// O(n^2) oracle (including zone-boundary, ra-wrap, and polar pairs),
// parallel determinism through LoadCoordinator::task_runner(), HTM cone
// search against a full-scan oracle on both live and snapshot views, a
// cross-match running against a pinned snapshot while a loader appends,
// and the fail-closed cone search on a disabled index.
#include "db/spatial.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/coordinator.h"
#include "db/engine.h"
#include "htm/htm.h"

namespace sky::db::spatial {
namespace {

constexpr double kPi = 3.14159265358979323846;

// Uniform points on the sphere (uniform in ra and in sin(dec)).
void random_catalog(Rng& rng, size_t n, std::vector<double>* ra,
                    std::vector<double>* dec) {
  for (size_t i = 0; i < n; ++i) {
    ra->push_back(rng.uniform_range(0.0, 360.0));
    dec->push_back(std::asin(rng.uniform_range(-1.0, 1.0)) * 180.0 / kPi);
  }
}

// The O(n^2) truth the zone matcher must reproduce exactly.
std::set<std::pair<uint32_t, uint32_t>> brute_pairs(
    const std::vector<double>& a_ra, const std::vector<double>& a_dec,
    const std::vector<double>& b_ra, const std::vector<double>& b_dec,
    double radius_deg) {
  std::set<std::pair<uint32_t, uint32_t>> pairs;
  for (size_t i = 0; i < a_ra.size(); ++i) {
    const htm::Vec3 a = htm::radec_to_vector(a_ra[i], a_dec[i]);
    for (size_t j = 0; j < b_ra.size(); ++j) {
      const htm::Vec3 b = htm::radec_to_vector(b_ra[j], b_dec[j]);
      if (htm::angular_distance_deg(a, b) <= radius_deg) {
        pairs.emplace(static_cast<uint32_t>(i), static_cast<uint32_t>(j));
      }
    }
  }
  return pairs;
}

std::set<std::pair<uint32_t, uint32_t>> as_set(
    const std::vector<MatchPair>& pairs) {
  std::set<std::pair<uint32_t, uint32_t>> out;
  for (const MatchPair& p : pairs) out.emplace(p.a, p.b);
  return out;
}

TEST(XmatchArraysTest, MatchesBruteForceOracle) {
  Rng rng(0xCA7A106);
  std::vector<double> a_ra, a_dec, b_ra, b_dec;
  random_catalog(rng, 300, &a_ra, &a_dec);
  random_catalog(rng, 300, &b_ra, &b_dec);
  // Guarantee real matches: every 4th B row is a perturbation of an A row,
  // some inside and some outside the radius.
  const double radius = 0.8;
  for (size_t j = 0; j + 4 <= b_ra.size(); j += 4) {
    b_ra[j] = a_ra[j];
    b_dec[j] = a_dec[j] + rng.uniform_range(-1.5 * radius, 1.5 * radius);
    b_dec[j] = std::min(89.9, std::max(-89.9, b_dec[j]));
  }

  XmatchOptions options;
  options.radius_deg = radius;
  const XmatchResult result =
      xmatch_arrays(a_ra, a_dec, b_ra, b_dec, options);
  const auto oracle = brute_pairs(a_ra, a_dec, b_ra, b_dec, radius);
  EXPECT_EQ(as_set(result.pairs), oracle);
  EXPECT_FALSE(oracle.empty());

  // Separations are the exact angular distances, and the report's funnel
  // is consistent: scanned >= candidates >= pairs == |result|.
  for (const MatchPair& p : result.pairs) {
    const double truth = htm::angular_distance_deg(
        htm::radec_to_vector(a_ra[p.a], a_dec[p.a]),
        htm::radec_to_vector(b_ra[p.b], b_dec[p.b]));
    EXPECT_DOUBLE_EQ(p.sep_deg, truth);
    EXPECT_LE(p.sep_deg, radius);
  }
  EXPECT_EQ(result.report.pairs,
            static_cast<int64_t>(result.pairs.size()));
  EXPECT_GE(result.report.costs.zone_scan_rows,
            result.report.costs.xmatch_candidates);
  EXPECT_GE(result.report.costs.xmatch_candidates,
            result.report.costs.xmatch_pairs);
  EXPECT_EQ(result.report.costs.xmatch_pairs, result.report.pairs);
}

// Pairs that straddle a zone boundary, wrap ra through 0/360, sit across
// the pole from each other, or span several zones (radius > zone height)
// are exactly the cases a naive bucketing drops.
TEST(XmatchArraysTest, BoundaryWrapAndPolarPairsSurvive) {
  // zone_height 0.5 puts boundaries at -90 + k*0.5; dec 10.0 is one.
  std::vector<double> a_ra = {20.0, 359.98, 10.0, 40.0, 200.0};
  std::vector<double> a_dec = {9.99, 0.0, 89.97, -45.0, -89.95};
  std::vector<double> b_ra = {20.0, 0.01, 190.0, 40.0, 20.0};
  std::vector<double> b_dec = {10.01, 0.0, 89.97, -43.8, -89.95};

  XmatchOptions options;
  options.radius_deg = 1.3;  // spans multiple 0.5-degree zones
  options.policy.zone_height_deg = 0.5;
  const XmatchResult result =
      xmatch_arrays(a_ra, a_dec, b_ra, b_dec, options);
  const auto oracle = brute_pairs(a_ra, a_dec, b_ra, b_dec, 1.3);
  // Every seeded pair (i, i) is a true match the matcher must keep.
  for (uint32_t i = 0; i < a_ra.size(); ++i) {
    EXPECT_TRUE(oracle.count({i, i})) << i;
  }
  EXPECT_EQ(as_set(result.pairs), oracle);
}

// The pair list must be byte-identical for any worker count and schedule:
// serial, one worker, and six workers over the real thread pool all agree,
// including the order of pairs.
TEST(XmatchArraysTest, ParallelResultIsDeterministic) {
  Rng rng(0xDE7E12);
  std::vector<double> a_ra, a_dec, b_ra, b_dec;
  random_catalog(rng, 600, &a_ra, &a_dec);
  random_catalog(rng, 600, &b_ra, &b_dec);

  XmatchOptions serial;
  serial.radius_deg = 1.0;
  const XmatchResult base = xmatch_arrays(a_ra, a_dec, b_ra, b_dec, serial);

  for (const int workers : {1, 6}) {
    XmatchOptions parallel = serial;
    parallel.policy.xmatch_workers = workers;
    parallel.fan_out = core::LoadCoordinator::task_runner();
    const XmatchResult run =
        xmatch_arrays(a_ra, a_dec, b_ra, b_dec, parallel);
    ASSERT_EQ(run.pairs.size(), base.pairs.size()) << workers;
    for (size_t i = 0; i < base.pairs.size(); ++i) {
      EXPECT_EQ(run.pairs[i].a, base.pairs[i].a);
      EXPECT_EQ(run.pairs[i].b, base.pairs[i].b);
      EXPECT_DOUBLE_EQ(run.pairs[i].sep_deg, base.pairs[i].sep_deg);
    }
    EXPECT_EQ(run.report.workers, workers);
    EXPECT_EQ(run.report.pairs, base.report.pairs);
    EXPECT_EQ(run.report.costs.xmatch_candidates,
              base.report.costs.xmatch_candidates);
  }
}

// ------------------------------------------------- engine-backed operators

Schema sky_schema() {
  Schema schema;
  for (const char* name : {"cat_a", "cat_b"}) {
    TableDef table;
    table.name = name;
    table.col("pk", ColumnType::kInt64, false);
    table.col("ra", ColumnType::kDouble, false);
    table.col("dec", ColumnType::kDouble, false);
    table.primary_key = {"pk"};
    // Columns auto-fill to {ra, dec} from the HTM spec.
    table.indexes.push_back(IndexDef{"ix_htm", {}, false,
                                     HtmIndexSpec{"ra", "dec", 12}});
    EXPECT_TRUE(schema.add_table(table).is_ok());
  }
  return schema;
}

class SpatialEngineTest : public ::testing::Test {
 protected:
  SpatialEngineTest() : engine_(sky_schema()) {
    table_a_ = engine_.table_id("cat_a").value();
    table_b_ = engine_.table_id("cat_b").value();
  }

  void load_rows(uint32_t table, int64_t pk_base,
                 const std::vector<double>& ra,
                 const std::vector<double>& dec) {
    const uint64_t txn = engine_.begin_transaction();
    for (size_t i = 0; i < ra.size(); ++i) {
      OpCosts costs;
      ASSERT_TRUE(engine_
                      .insert_row(txn, table,
                                  {Value::i64(pk_base +
                                              static_cast<int64_t>(i)),
                                   Value::f64(ra[i]), Value::f64(dec[i])},
                                  costs)
                      .is_ok());
    }
    ASSERT_TRUE(engine_.commit(txn).is_ok());
  }

  Engine engine_;
  uint32_t table_a_ = 0;
  uint32_t table_b_ = 0;
};

TEST_F(SpatialEngineTest, ConeSearchMatchesScanOracle) {
  Rng rng(0xC0DE5EA);
  std::vector<double> ra, dec;
  random_catalog(rng, 500, &ra, &dec);
  load_rows(table_a_, 0, ra, dec);

  const auto spec = resolve_spatial(engine_, table_a_);
  ASSERT_TRUE(spec.is_ok());
  EXPECT_EQ(spec->htm_index, "ix_htm");
  EXPECT_EQ(spec->ra_column, 1);
  EXPECT_EQ(spec->dec_column, 2);
  EXPECT_EQ(spec->htm_depth, 12);

  const Snapshot snap = engine_.pin_snapshot();
  for (int probe = 0; probe < 12; ++probe) {
    const double center_ra = rng.uniform_range(0.0, 360.0);
    const double center_dec =
        std::asin(rng.uniform_range(-1.0, 1.0)) * 180.0 / kPi;
    const double radius = rng.uniform_range(0.5, 12.0);
    const htm::Vec3 center = htm::radec_to_vector(center_ra, center_dec);

    std::set<int64_t> oracle;
    for (size_t i = 0; i < ra.size(); ++i) {
      const htm::Vec3 v = htm::radec_to_vector(ra[i], dec[i]);
      if (htm::angular_distance_deg(center, v) <= radius) {
        oracle.insert(static_cast<int64_t>(i));
      }
    }

    for (const bool snapshot_view : {false, true}) {
      const ReadView view =
          snapshot_view ? engine_.view_at(snap) : engine_.live_view();
      OpCosts costs;
      const auto hits =
          cone_search(view, *spec, center_ra, center_dec, radius, &costs);
      ASSERT_TRUE(hits.is_ok());
      std::set<int64_t> got;
      for (const Row& row : *hits) got.insert(row[0].as_i64());
      EXPECT_EQ(got, oracle) << "probe " << probe;
      // The cover is conservative: every returned row passed the exact
      // test, and the funnel tallies stay ordered.
      EXPECT_EQ(costs.xmatch_pairs, static_cast<int64_t>(hits->size()));
      EXPECT_GE(costs.zone_scan_rows, costs.xmatch_candidates);
      EXPECT_GE(costs.xmatch_candidates, costs.xmatch_pairs);
    }
  }
}

TEST_F(SpatialEngineTest, ConeSearchFailsClosedOnDisabledIndex) {
  std::vector<double> ra = {10.0}, dec = {10.0};
  load_rows(table_a_, 0, ra, dec);
  const auto spec = resolve_spatial(engine_, table_a_);
  ASSERT_TRUE(spec.is_ok());

  ASSERT_TRUE(engine_.set_index_enabled(table_a_, "ix_htm", false).is_ok());
  const auto live =
      cone_search(engine_.live_view(), *spec, 10.0, 10.0, 1.0);
  ASSERT_FALSE(live.is_ok());
  EXPECT_EQ(live.status().code(), ErrorCode::kFailedPrecondition);

  // A chunk committed while the index was off poisons snapshot covers of
  // that chunk the same way (the canonical fail-closed symmetry).
  load_rows(table_a_, 100, ra, dec);
  ASSERT_TRUE(engine_.set_index_enabled(table_a_, "ix_htm", true).is_ok());
  const Snapshot stale = engine_.pin_snapshot();
  const auto snapped =
      cone_search(engine_.view_at(stale), *spec, 10.0, 10.0, 1.0);
  ASSERT_FALSE(snapped.is_ok());
  EXPECT_EQ(snapped.status().code(), ErrorCode::kFailedPrecondition);
}

// The tentpole promise: a cross-match pinned at a snapshot LSN returns the
// same pairs whether or not loaders are appending underneath it.
TEST_F(SpatialEngineTest, XmatchAgainstPinnedSnapshotDuringLoad) {
  Rng rng(0xF00D);
  std::vector<double> a_ra, a_dec, b_ra, b_dec;
  random_catalog(rng, 200, &a_ra, &a_dec);
  b_ra = a_ra;  // B starts as a perturbed copy of A: plenty of matches
  b_dec = a_dec;
  for (size_t i = 0; i < b_ra.size(); ++i) {
    b_dec[i] = std::min(89.9, std::max(-89.9,
                                       b_dec[i] + rng.uniform_range(-0.2,
                                                                    0.2)));
  }
  load_rows(table_a_, 0, a_ra, a_dec);
  load_rows(table_b_, 0, b_ra, b_dec);

  const auto spec_a = resolve_spatial(engine_, table_a_);
  const auto spec_b = resolve_spatial(engine_, table_b_);
  ASSERT_TRUE(spec_a.is_ok());
  ASSERT_TRUE(spec_b.is_ok());

  const Snapshot snap = engine_.pin_snapshot();
  const uint64_t pinned_lsn = snap.read_lsn();
  const ReadView view = engine_.view_at(snap);

  XmatchOptions options;
  options.radius_deg = 0.25;
  options.policy.xmatch_workers = 4;
  options.fan_out = core::LoadCoordinator::task_runner();

  // Baseline before any new commits.
  const auto before = xmatch(view, *spec_a, view, *spec_b, options);
  ASSERT_TRUE(before.is_ok());

  // Load more rows into both tables while re-running the pinned match.
  std::thread loader([&] {
    Rng load_rng(0xBEEF);
    for (int batch = 0; batch < 5; ++batch) {
      std::vector<double> ra, dec;
      random_catalog(load_rng, 50, &ra, &dec);
      load_rows(table_a_, 1000 + batch * 100, ra, dec);
      load_rows(table_b_, 1000 + batch * 100, ra, dec);
    }
  });
  std::vector<Row> a_rows, b_rows;
  const auto during =
      xmatch(view, *spec_a, view, *spec_b, options, &a_rows, &b_rows);
  loader.join();
  const auto after = xmatch(view, *spec_a, view, *spec_b, options);

  ASSERT_TRUE(during.is_ok());
  ASSERT_TRUE(after.is_ok());
  EXPECT_EQ(snap.read_lsn(), pinned_lsn);
  ASSERT_EQ(during->pairs.size(), before->pairs.size());
  ASSERT_EQ(after->pairs.size(), before->pairs.size());
  EXPECT_FALSE(before->pairs.empty());
  for (size_t i = 0; i < before->pairs.size(); ++i) {
    EXPECT_EQ(during->pairs[i].a, before->pairs[i].a);
    EXPECT_EQ(during->pairs[i].b, before->pairs[i].b);
    EXPECT_EQ(after->pairs[i].a, before->pairs[i].a);
    EXPECT_EQ(after->pairs[i].b, before->pairs[i].b);
  }

  // Pair indices resolve through the rows collected from the same view,
  // and the pinned view never saw the loader's rows.
  ASSERT_EQ(a_rows.size(), a_ra.size());
  ASSERT_EQ(b_rows.size(), b_ra.size());
  for (const MatchPair& p : during->pairs) {
    const Row& a = a_rows[p.a];
    const Row& b = b_rows[p.b];
    const double truth = htm::angular_distance_deg(
        htm::radec_to_vector(a[1].as_f64(), a[2].as_f64()),
        htm::radec_to_vector(b[1].as_f64(), b[2].as_f64()));
    EXPECT_DOUBLE_EQ(p.sep_deg, truth);
  }
  // The live view, by contrast, has moved on.
  EXPECT_GT(engine_.live_view().row_count(table_a_),
            view.row_count(table_a_));
}

}  // namespace
}  // namespace sky::db::spatial
