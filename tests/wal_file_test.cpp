// On-disk WAL format tests: round trip, crash-consistent truncation,
// checksum-detected corruption, and end-to-end persist -> restart ->
// recover through the engine.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "catalog/generator.h"
#include "catalog/pq_schema.h"
#include "client/session.h"
#include "core/bulk_loader.h"
#include "db/recovery.h"
#include "storage/wal_file.h"

namespace sky::storage {
namespace {

class WalFileTest : public ::testing::Test {
 protected:
  WalFileTest() {
    dir_ = std::filesystem::temp_directory_path() /
           ("skyloader_wal_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  ~WalFileTest() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

std::vector<WalRecord> sample_records() {
  return {
      {WalRecordType::kInsert, 1, 5, "payload-one"},
      {WalRecordType::kInsert, 1, 6, std::string("\x00\x01\xFF", 3), 7},
      {WalRecordType::kCommit, 1, 0, ""},
      {WalRecordType::kRollbackInsert, 2, 5, "", 255},
  };
}

TEST_F(WalFileTest, RoundTrip) {
  const auto records = sample_records();
  ASSERT_TRUE(write_wal_file(path("a.wal"), records).is_ok());
  const auto read = read_wal_file(path("a.wal"));
  ASSERT_TRUE(read.is_ok()) << read.status().to_string();
  EXPECT_FALSE(read->truncated);
  ASSERT_EQ(read->records.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(read->records[i].type, records[i].type);
    EXPECT_EQ(read->records[i].txn_id, records[i].txn_id);
    EXPECT_EQ(read->records[i].table_id, records[i].table_id);
    EXPECT_EQ(read->records[i].extent, records[i].extent);
    EXPECT_EQ(read->records[i].payload, records[i].payload);
  }
}

TEST_F(WalFileTest, EmptyLog) {
  ASSERT_TRUE(write_wal_file(path("empty.wal"), {}).is_ok());
  const auto read = read_wal_file(path("empty.wal"));
  ASSERT_TRUE(read.is_ok());
  EXPECT_TRUE(read->records.empty());
  EXPECT_FALSE(read->truncated);
}

TEST_F(WalFileTest, MissingFileAndBadMagic) {
  EXPECT_EQ(read_wal_file(path("missing.wal")).status().code(),
            ErrorCode::kIoError);
  {
    std::ofstream out(path("junk.wal"), std::ios::binary);
    out << "this is not a WAL";
  }
  EXPECT_EQ(read_wal_file(path("junk.wal")).status().code(),
            ErrorCode::kParseError);
}

TEST_F(WalFileTest, TornTailRecoversPrefix) {
  ASSERT_TRUE(write_wal_file(path("torn.wal"), sample_records()).is_ok());
  // Chop bytes off the end: crash mid-write of the final record.
  const auto size = std::filesystem::file_size(path("torn.wal"));
  std::filesystem::resize_file(path("torn.wal"), size - 5);
  const auto read = read_wal_file(path("torn.wal"));
  ASSERT_TRUE(read.is_ok());
  EXPECT_TRUE(read->truncated);
  EXPECT_EQ(read->records.size(), 3u);  // intact prefix only
}

TEST_F(WalFileTest, ChecksumCatchesCorruption) {
  ASSERT_TRUE(write_wal_file(path("corrupt.wal"), sample_records()).is_ok());
  // Flip a byte inside the second record's payload.
  std::fstream file(path("corrupt.wal"),
                    std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(16 + 21 + 11 + 8 + 21 + 1);  // header + rec1 + into rec2
  file.put('\x7E');
  file.close();
  const auto read = read_wal_file(path("corrupt.wal"));
  ASSERT_TRUE(read.is_ok());
  EXPECT_TRUE(read->truncated);
  EXPECT_LE(read->records.size(), 1u);  // stops at the corrupted record
}

TEST_F(WalFileTest, PersistRestartRecoverEndToEnd) {
  // Load a catalog file with WAL retention, persist the log to disk,
  // "restart" (fresh engine), recover from the file, compare repositories.
  const db::Schema schema = catalog::make_pq_schema();
  db::EngineOptions options;
  options.retain_wal_records = true;
  db::Engine engine(schema, options);
  {
    client::DirectSession session(engine);
    core::BulkLoaderOptions loader_options;
    loader_options.write_audit_row = false;
    core::BulkLoader loader(session, schema, loader_options);
    ASSERT_TRUE(loader
                    .load_text("reference",
                               catalog::CatalogGenerator::reference_file().text)
                    .is_ok());
    catalog::FileSpec spec;
    spec.seed = 314;
    spec.unit_id = 77;
    spec.target_bytes = 48 * 1024;
    spec.error_rate = 0.03;
    ASSERT_TRUE(
        loader
            .load_text("n.cat", catalog::CatalogGenerator::generate(spec).text)
            .is_ok());
  }
  ASSERT_TRUE(write_wal_file(path("repo.wal"), engine.wal_records()).is_ok());

  const auto read = read_wal_file(path("repo.wal"));
  ASSERT_TRUE(read.is_ok());
  ASSERT_FALSE(read->truncated);
  const auto recovered = db::recover_from_wal(schema, read->records);
  ASSERT_TRUE(recovered.is_ok()) << recovered.status().to_string();
  EXPECT_TRUE(db::engines_equivalent(engine, **recovered).is_ok());
  EXPECT_TRUE((*recovered)->verify_integrity().is_ok());
}

}  // namespace
}  // namespace sky::storage
