// Concurrency tests for the fine-grained engine locking: parallel loaders
// over the PQ schema with interleaved bad rows and periodic commits, a raw
// multi-threaded engine stress with deliberate constraint violations and
// concurrent readers/telemetry pollers, and abandoned-session rollbacks.
// Run under ThreadSanitizer in CI (SKY_SANITIZE=thread).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "catalog/generator.h"
#include "catalog/pq_schema.h"
#include "client/session.h"
#include "core/coordinator.h"
#include "db/engine.h"
#include "db/query_scheduler.h"

namespace sky::core {
namespace {

std::vector<CatalogFile> make_files(int count, int64_t bytes_each,
                                    uint64_t seed, double error_rate) {
  std::vector<CatalogFile> files;
  for (int f = 0; f < count; ++f) {
    catalog::FileSpec spec;
    spec.name = "conc" + std::to_string(f) + ".cat";
    spec.seed = seed + static_cast<uint64_t>(f);
    spec.unit_id = 400 + f;
    spec.target_bytes = bytes_each;
    spec.error_rate = error_rate;
    files.push_back(
        CatalogFile{spec.name, catalog::CatalogGenerator::generate(spec).text});
  }
  return files;
}

// Eight real loader threads over the PQ schema, error-laden files, commits
// every other cycle. Afterwards the engine must audit clean and row counts
// must match the report exactly, per table.
TEST(EngineConcurrencyTest, EightLoadersWithErrorsAndPeriodicCommits) {
  const db::Schema schema = catalog::make_pq_schema();
  db::Engine engine(schema);
  {
    client::DirectSession session(engine);
    BulkLoaderOptions loader_options;
    loader_options.write_audit_row = false;
    BulkLoader loader(session, schema, loader_options);
    ASSERT_TRUE(loader
                    .load_text("reference",
                               catalog::CatalogGenerator::reference_file().text)
                    .is_ok());
  }
  const int64_t rows_before = engine.total_rows();

  const auto files = make_files(16, 24 * 1024, 541, /*error_rate=*/0.15);
  CoordinatorOptions options;
  options.parallel_degree = 8;
  options.loader.write_audit_row = false;
  options.loader.commit.every_cycles = 2;
  const auto report = LoadCoordinator::run_threads(
      files, schema,
      [&](int) { return std::make_unique<client::DirectSession>(engine); },
      options);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report->files.size(), 16u);

  // The error-laden files must actually have exercised the skip paths.
  int64_t skipped = 0;
  FileLoadReport totals;
  for (const FileLoadReport& file : report->files) {
    skipped += file.total_skipped();
    totals.merge_counts(file);
  }
  EXPECT_GT(skipped, 0);
  EXPECT_GT(report->total_rows_loaded, 0);

  // Exact accounting: engine contents == reference + every reported row,
  // in aggregate and per table.
  EXPECT_EQ(engine.total_rows(), rows_before + report->total_rows_loaded);
  for (const auto& [table, rows] : totals.loaded_per_table) {
    const uint32_t tid = engine.table_id(table).value();
    EXPECT_GE(engine.live_view().row_count(tid), rows) << table;
  }
  EXPECT_TRUE(engine.verify_integrity().is_ok());

  // Lock-wait attribution is present for every worker (possibly zero).
  ASSERT_EQ(report->worker_lock_wait.size(), 8u);
  for (const Nanos wait : report->worker_lock_wait) EXPECT_GE(wait, 0);
}

// Raw engine stress: writers inserting parent/child rows with deliberate
// duplicate-PK and dangling-FK rows mid-batch (JDBC stop-at-first-failure
// semantics), periodic commits, concurrent telemetry pollers and PK readers,
// and an insert observer counting under the table latch.
TEST(EngineConcurrencyTest, MixedWritersReadersTelemetry) {
  db::Schema schema;
  {
    db::TableDef parent;
    parent.name = "parent";
    parent.col("id", db::ColumnType::kInt64, false);
    parent.primary_key = {"id"};
    ASSERT_TRUE(schema.add_table(parent).is_ok());
    db::TableDef child;
    child.name = "child";
    child.col("id", db::ColumnType::kInt64, false);
    child.col("parent_id", db::ColumnType::kInt64, true);
    child.primary_key = {"id"};
    child.foreign_keys.push_back({{"parent_id"}, "parent"});
    ASSERT_TRUE(schema.add_table(child).is_ok());
  }
  db::EngineOptions options;
  options.retain_wal_records = true;
  db::Engine engine(schema, options);
  const uint32_t parent_id = engine.table_id("parent").value();
  const uint32_t child_id = engine.table_id("child").value();

  std::atomic<int64_t> observed{0};
  engine.set_insert_observer(
      [&observed](uint32_t, uint64_t) { observed.fetch_add(1); });

  constexpr int kWriters = 8;
  constexpr int64_t kRowsPerWriter = 400;
  std::atomic<int64_t> applied_total{0};
  std::atomic<bool> stop_readers{false};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      int64_t applied = 0;
      uint64_t txn = engine.begin_transaction();
      const int64_t base = static_cast<int64_t>(w) * 1'000'000;
      for (int64_t i = 0; i < kRowsPerWriter; i += 10) {
        // A batch of 10 parents with a duplicate planted in the middle:
        // rows after the duplicate are discarded by batch semantics.
        std::vector<db::Row> batch;
        for (int64_t j = 0; j < 10; ++j) {
          const bool dup = (j == 5) && (i % 50 == 0) && i > 0;
          batch.push_back({db::Value::i64(dup ? base + i - 10 : base + i + j)});
        }
        const db::BatchResult result =
            engine.insert_batch(txn, parent_id, batch);
        applied += result.rows_applied;
        // Children referencing our own parents, plus one dangling FK that
        // must fail and discard the tail of its batch.
        std::vector<db::Row> children;
        for (int64_t j = 0; j < 5; ++j) {
          const bool dangling = (j == 3) && (i % 40 == 0);
          children.push_back(
              {db::Value::i64(base + 500'000 + i + j),
               db::Value::i64(dangling ? 777'777'777 : base + i)});
        }
        const db::BatchResult child_result =
            engine.insert_batch(txn, child_id, children);
        applied += child_result.rows_applied;
        if (i % 40 == 0 && (i / 40) % 2 == 1) {
          EXPECT_TRUE(engine.commit(txn).is_ok());
          txn = engine.begin_transaction();
        }
      }
      EXPECT_TRUE(engine.commit(txn).is_ok());
      applied_total.fetch_add(applied);
    });
  }

  // Telemetry poller: every getter must return a coherent snapshot while
  // writers run.
  threads.emplace_back([&] {
    size_t last_record_count = 0;
    while (!stop_readers.load()) {
      const storage::WalStats wal = engine.wal_stats();
      EXPECT_GE(wal.bytes_appended, wal.bytes_flushed);
      // records() is a snapshot of an append-only stream: monotonic.
      const auto records = engine.wal_records();
      EXPECT_GE(records.size(), last_record_count);
      last_record_count = records.size();
      const storage::CacheEvents cache = engine.cache_events();
      EXPECT_GE(cache.misses, 0);
      const storage::IoTally io = engine.io_tally();
      EXPECT_GE(io.log_bytes_flushed, 0);
      (void)engine.concurrency_stats();
      std::this_thread::yield();
    }
  });
  // PK readers: lookups race with inserts but must never crash or corrupt.
  threads.emplace_back([&] {
    int64_t probe = 0;
    while (!stop_readers.load()) {
      (void)engine.live_view().pk_lookup(parent_id, {db::Value::i64(probe % 4'000'000)});
      (void)engine.live_view().row_count(child_id);
      probe += 37;
      std::this_thread::yield();
    }
  });
  // Abandoned sessions: rollback (engine-exclusive) races with everything.
  threads.emplace_back([&] {
    for (int r = 0; r < 20; ++r) {
      client::DirectSession session(engine);
      const auto table = session.prepare_insert("parent");
      ASSERT_TRUE(table.is_ok());
      std::vector<db::Row> rows;
      for (int64_t j = 0; j < 8; ++j) {
        rows.push_back({db::Value::i64(9'000'000 + r * 100 + j)});
      }
      (void)session.execute_batch(*table, rows);
      // Session destructor rolls the open transaction back.
    }
  });

  for (int w = 0; w < kWriters; ++w) threads[static_cast<size_t>(w)].join();
  stop_readers.store(true);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  // Every applied row is in the engine; every rolled-back row is not.
  EXPECT_EQ(engine.total_rows(), applied_total.load());
  // The observer saw every insert, including ones later rolled back.
  EXPECT_GE(observed.load(), applied_total.load());
  EXPECT_TRUE(engine.verify_integrity().is_ok());

  // Duplicates and dangling FKs were actually planted and rejected.
  EXPECT_LT(engine.total_rows(),
            static_cast<int64_t>(kWriters) * kRowsPerWriter * 3 / 2);
  EXPECT_EQ(engine.live_view().pk_lookup(parent_id, {db::Value::i64(9'000'042)})
                .status()
                .code(),
            ErrorCode::kNotFound);
}

// Eight writers hammer ONE table over an eight-extent sharded heap:
// batched appends with planted duplicate keys, periodic commits, whole-
// transaction rollbacks, while logical scanners, physical heap scanners,
// and extent-stat pollers run concurrently. Exercises the extent latches,
// the three-phase insert's discard path, and the latch-free heap counters;
// TSan-clean under SKY_SANITIZE=thread.
TEST(EngineConcurrencyTest, ShardedSameTableAppendRollbackScanStress) {
  db::Schema schema;
  db::TableDef hot;
  hot.name = "hot";
  hot.col("id", db::ColumnType::kInt64, false);
  hot.col("payload", db::ColumnType::kString);
  hot.primary_key = {"id"};
  ASSERT_TRUE(schema.add_table(hot).is_ok());
  db::EngineOptions options;
  options.heap_extents = 8;
  db::Engine engine(schema, options);
  const uint32_t tid = engine.table_id("hot").value();

  constexpr int kWriters = 8;
  constexpr int64_t kBatches = 60;  // per writer, 8 rows each
  std::atomic<int64_t> committed_rows{0};
  std::atomic<bool> stop_readers{false};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      int64_t uncommitted = 0;
      int64_t committed = 0;
      uint64_t txn = engine.begin_transaction();
      const int64_t base = static_cast<int64_t>(w) * 1'000'000;
      for (int64_t b = 0; b < kBatches; ++b) {
        // One batch of 8; every tenth batch plants a duplicate of the
        // previous batch's first key at index 4, so batch semantics drop
        // the tail and the pending heap row is discarded.
        std::vector<db::Row> batch;
        for (int64_t j = 0; j < 8; ++j) {
          const bool dup = (j == 4) && (b % 10 == 3);
          const int64_t id = dup ? base + (b - 1) * 8 : base + b * 8 + j;
          batch.push_back({db::Value::i64(id),
                           db::Value::str("w" + std::to_string(w) + ":" +
                                          std::to_string(b * 8 + j))});
        }
        uncommitted += engine.insert_batch(txn, tid, batch).rows_applied;
        if (b % 12 == 11) {
          // Five transaction boundaries per writer; the third rolls back.
          if ((b / 12) % 3 == 2) {
            EXPECT_TRUE(engine.rollback(txn).is_ok());
          } else {
            EXPECT_TRUE(engine.commit(txn).is_ok());
            committed += uncommitted;
          }
          uncommitted = 0;
          txn = engine.begin_transaction();
        }
      }
      EXPECT_TRUE(engine.commit(txn).is_ok());
      committed += uncommitted;
      committed_rows.fetch_add(committed);
    });
  }

  // Logical scanner + extent-stat poller racing the writers.
  threads.emplace_back([&] {
    while (!stop_readers.load()) {
      (void)engine.live_view().scan_collect(tid, [](const db::Row&) { return true; });
      const auto stats = engine.heap_extent_stats(tid);
      EXPECT_TRUE(stats.is_ok());
      std::this_thread::yield();
    }
  });
  // Physical heap scanner: every visible slot well-formed and non-empty.
  threads.emplace_back([&] {
    while (!stop_readers.load()) {
      EXPECT_TRUE(engine.live_view()
                      .scan_heap(tid,
                                 [](storage::SlotId slot,
                                    std::string_view bytes) {
                                   EXPECT_LT(slot.extent, 8u);
                                   EXPECT_FALSE(bytes.empty());
                                 })
                      .is_ok());
      std::this_thread::yield();
    }
  });

  for (int w = 0; w < kWriters; ++w) threads[static_cast<size_t>(w)].join();
  stop_readers.store(true);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  // Exact accounting: committed rows and nothing else, spread across the
  // extents. 48 transactions round-robin over 8 extents and only 8 roll
  // back, so at most one extent can end up empty.
  EXPECT_EQ(engine.live_view().row_count(tid), committed_rows.load());
  const auto stats = engine.heap_extent_stats(tid);
  ASSERT_TRUE(stats.is_ok());
  ASSERT_EQ(stats->size(), 8u);
  int64_t extent_rows = 0;
  int populated = 0;
  for (const auto& extent : *stats) {
    extent_rows += extent.rows;
    populated += extent.rows > 0 ? 1 : 0;
  }
  EXPECT_EQ(extent_rows, committed_rows.load());
  EXPECT_GE(populated, 7);
  EXPECT_TRUE(engine.verify_integrity().is_ok());
}

// ITL admission: six writers hammer one table gated at two slots, with
// commits and deliberate rollbacks mixed in. The gate must actually queue
// (waits observed), never lose a release on the abort path (in_use back to
// zero after quiescence, acquires == admissions), and the data must stay
// intact. TSan-clean under SKY_SANITIZE=thread.
TEST(EngineConcurrencyTest, ItlGateContentionWithAborts) {
  db::Schema schema;
  db::TableDef hot;
  hot.name = "hot";
  hot.col("id", db::ColumnType::kInt64, false);
  hot.primary_key = {"id"};
  ASSERT_TRUE(schema.add_table(hot).is_ok());
  db::EngineOptions options;
  options.concurrency.itl_slots_per_table = 2;  // slots < writers: must queue
  db::Engine engine(schema, options);
  const uint32_t tid = engine.table_id("hot").value();

  constexpr int kWriters = 6;
  constexpr int kTxnsPerWriter = 12;
  std::atomic<int64_t> committed_rows{0};
  std::atomic<uint64_t> admissions{0};

  // Deterministic contention first: two holders pin both slots with open
  // transactions, a third writer provably queues, then one holder aborts
  // (slot must come back) and the other commits.
  {
    const uint64_t h1 = engine.begin_transaction();
    const uint64_t h2 = engine.begin_transaction();
    const std::vector<db::Row> r1 = {{db::Value::i64(9'000'001)}};
    const std::vector<db::Row> r2 = {{db::Value::i64(9'000'002)}};
    EXPECT_EQ(engine.insert_batch(h1, tid, r1).rows_applied, 1);
    EXPECT_EQ(engine.insert_batch(h2, tid, r2).rows_applied, 1);
    std::thread queued([&] {
      const uint64_t txn = engine.begin_transaction();
      const std::vector<db::Row> r3 = {{db::Value::i64(9'000'003)}};
      EXPECT_EQ(engine.insert_batch(txn, tid, r3).rows_applied, 1);
      EXPECT_TRUE(engine.commit(txn).is_ok());
    });
    while (engine.concurrency_stats().itl.waits < 1) {
      std::this_thread::yield();
    }
    EXPECT_EQ(engine.concurrency_stats().itl.in_use, 2);
    EXPECT_TRUE(engine.rollback(h1).is_ok());  // abort path frees the slot
    EXPECT_TRUE(engine.commit(h2).is_ok());
    queued.join();
    admissions.fetch_add(3);
    committed_rows.fetch_add(2);  // h2 + queued; h1 rolled back
  }

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      int64_t committed = 0;
      for (int t = 0; t < kTxnsPerWriter; ++t) {
        const uint64_t txn = engine.begin_transaction();
        std::vector<db::Row> rows;
        for (int64_t j = 0; j < 6; ++j) {
          rows.push_back(
              {db::Value::i64(w * 1'000'000 + t * 100 + j)});
        }
        const db::BatchResult result = engine.insert_batch(txn, tid, rows);
        admissions.fetch_add(1);  // first write to the table admits once
        EXPECT_EQ(result.rows_applied, 6);
        // Every third transaction aborts: the gate slot must come back.
        if (t % 3 == 2) {
          EXPECT_TRUE(engine.rollback(txn).is_ok());
        } else {
          EXPECT_TRUE(engine.commit(txn).is_ok());
          committed += result.rows_applied;
        }
      }
      committed_rows.fetch_add(committed);
    });
  }
  // Poll the gate while writers run: in_use must never exceed the slots.
  std::atomic<bool> stop_poller{false};
  threads.emplace_back([&] {
    while (!stop_poller.load()) {
      const db::ConcurrencyStats stats = engine.concurrency_stats();
      EXPECT_GE(stats.itl.in_use, 0);
      EXPECT_LE(stats.itl.in_use, 2);
      std::this_thread::yield();
    }
  });
  for (int w = 0; w < kWriters; ++w) threads[static_cast<size_t>(w)].join();
  stop_poller.store(true);
  threads.back().join();

  const db::ConcurrencyStats stats = engine.concurrency_stats();
  // Six writers over two slots must actually have queued.
  EXPECT_GT(stats.itl.waits, 0u);
  EXPECT_GT(stats.itl.total_wait, 0);
  // Commit and abort paths both released: nothing leaked.
  EXPECT_EQ(stats.itl.in_use, 0);
  EXPECT_EQ(stats.transaction_gate.in_use, 0);
  // One admission per (transaction, table) first write, no double-acquire.
  EXPECT_EQ(stats.itl.acquires, admissions.load());
  // Rolled-back rows are gone, committed rows are all there.
  EXPECT_EQ(engine.live_view().row_count(tid), committed_rows.load());
  EXPECT_TRUE(engine.verify_integrity().is_ok());
}

// Two-lane scheduler fairness: with every batch slot held by admitted
// batch queries, an interactive arrival must admit immediately — the lanes
// are separate gates, so batch occupancy can never queue interactive work.
TEST(EngineConcurrencyTest, BatchLaneNeverStarvesInteractiveAdmission) {
  db::Schema schema;
  db::TableDef t;
  t.name = "only";
  t.col("id", db::ColumnType::kInt64, false);
  t.primary_key = {"id"};
  ASSERT_TRUE(schema.add_table(t).is_ok());
  db::Engine engine(schema);

  core::QueryPolicy policy;
  policy.interactive_slots = 2;
  policy.batch_slots = 2;
  db::QueryScheduler scheduler(engine, policy);

  // Saturate the batch lane completely.
  db::Admission batch1 = scheduler.admit(db::QueryLane::kBatch);
  db::Admission batch2 = scheduler.admit(db::QueryLane::kBatch);
  ASSERT_TRUE(batch1.valid());
  ASSERT_TRUE(batch2.valid());
  EXPECT_EQ(scheduler.stats().batch.gate.in_use, 2);

  // Interactive admission goes straight through: no gate wait recorded.
  db::OpCosts costs;
  const db::Admission interactive =
      scheduler.admit(db::QueryLane::kInteractive, &costs);
  ASSERT_TRUE(interactive.valid());
  EXPECT_TRUE(interactive.snapshot().valid());
  const db::QueryStats stats = scheduler.stats();
  EXPECT_EQ(stats.interactive.gate.waits, 0u);
  EXPECT_EQ(stats.interactive.gate.in_use, 1);
  // A third batch admission would queue; interactive did not.
  EXPECT_EQ(stats.batch.gate.in_use, 2);
}

// Batch yielding: while an interactive query is in flight, a batch
// admission must hold back (batch_yields counts it) and admit only after
// the interactive lane drains.
TEST(EngineConcurrencyTest, BatchAdmissionYieldsToInteractiveInFlight) {
  db::Schema schema;
  db::TableDef t;
  t.name = "only";
  t.col("id", db::ColumnType::kInt64, false);
  t.primary_key = {"id"};
  ASSERT_TRUE(schema.add_table(t).is_ok());
  db::Engine engine(schema);

  core::QueryPolicy policy;
  policy.interactive_slots = 1;
  policy.batch_slots = 1;
  db::QueryScheduler scheduler(engine, policy);

  auto interactive = std::make_unique<db::Admission>(
      scheduler.admit(db::QueryLane::kInteractive));
  ASSERT_TRUE(interactive->valid());

  std::atomic<bool> batch_admitted{false};
  std::thread batch_thread([&] {
    db::OpCosts costs;
    const db::Admission batch =
        scheduler.admit(db::QueryLane::kBatch, &costs);
    EXPECT_TRUE(batch.valid());
    // The yield wait is query-lane time, not lock time.
    EXPECT_GT(costs.query_lane_wait_ns, 0);
    EXPECT_EQ(costs.lock_wait_ns, 0);
    batch_admitted.store(true);
  });

  // The batch admitter must register its yield, and must not be admitted
  // while the interactive query is still running.
  while (scheduler.stats().batch_yields < 1) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(batch_admitted.load());
  EXPECT_EQ(scheduler.stats().batch.queue_depth, 1);

  interactive.reset();  // drain the interactive lane
  batch_thread.join();
  EXPECT_TRUE(batch_admitted.load());
  const db::QueryStats stats = scheduler.stats();
  EXPECT_GE(stats.batch_yields, 1);
  EXPECT_EQ(stats.batch.completed, 1);
  EXPECT_EQ(stats.interactive.completed, 1);
  EXPECT_EQ(stats.snapshot_pins, 0);  // every admission unpinned
}

// Scheduler stress for the sanitizer legs: six loaders append committed
// batches while four interactive clients (snapshot PK lookups + index
// ranges) and two batch scanners (snapshot full scans) run ~10k query ops
// through the two-lane scheduler. Exercises concurrent publication, pin /
// unpin, yield handshakes, and histogram recording; TSan-clean under
// SKY_SANITIZE=thread is the point of the test.
TEST(EngineConcurrencyTest, QuerySchedulerMixedWorkloadStress) {
  db::Schema schema;
  db::TableDef objects;
  objects.name = "objects";
  objects.col("objid", db::ColumnType::kInt64, false);
  objects.col("htmid", db::ColumnType::kInt64, false);
  objects.primary_key = {"objid"};
  objects.indexes.push_back(db::IndexDef{"ix_htmid", {"htmid"}, false, {}});
  ASSERT_TRUE(schema.add_table(objects).is_ok());
  db::EngineOptions options;
  options.heap_extents = 4;
  db::Engine engine(schema, options);
  const uint32_t tid = engine.table_id("objects").value();

  core::QueryPolicy policy;
  policy.interactive_slots = 2;
  policy.batch_slots = 1;
  db::QueryScheduler scheduler(engine, policy);

  constexpr int kLoaders = 6;
  constexpr int kInteractive = 4;
  constexpr int kBatchScanners = 2;
  constexpr int64_t kTxnsPerLoader = 40;   // 8 rows each
  constexpr int64_t kOpsPerInteractive = 2'000;
  constexpr int64_t kOpsPerBatch = 1'000;  // 4*2000 + 2*1000 = 10k query ops

  std::atomic<int64_t> committed_high[kLoaders];
  for (auto& high : committed_high) high.store(-1);

  std::vector<std::thread> threads;
  for (int w = 0; w < kLoaders; ++w) {
    threads.emplace_back([&, w] {
      const int64_t base = static_cast<int64_t>(w) * 1'000'000;
      for (int64_t t2 = 0; t2 < kTxnsPerLoader; ++t2) {
        const uint64_t txn = engine.begin_transaction();
        std::vector<db::Row> rows;
        for (int64_t j = 0; j < 8; ++j) {
          const int64_t id = base + t2 * 8 + j;
          rows.push_back({db::Value::i64(id), db::Value::i64(id % 4096)});
        }
        EXPECT_EQ(engine.insert_batch(txn, tid, rows).rows_applied, 8);
        EXPECT_TRUE(engine.commit(txn).is_ok());
        committed_high[w].store(base + t2 * 8 + 7,
                                std::memory_order_release);
      }
    });
  }
  for (int c = 0; c < kInteractive; ++c) {
    threads.emplace_back([&, c] {
      uint64_t probe = static_cast<uint64_t>(c) * 7919 + 1;
      for (int64_t i = 0; i < kOpsPerInteractive; ++i) {
        probe = probe * 6364136223846793005ull + 1442695040888963407ull;
        const int loader = static_cast<int>(probe % kLoaders);
        // Read the high-water mark BEFORE admitting: the commit that set it
        // finished publishing before this load, so the snapshot pinned at
        // admission must contain the key.
        const int64_t high =
            committed_high[loader].load(std::memory_order_acquire);
        db::OpCosts costs;
        const db::Admission grant =
            scheduler.admit(db::QueryLane::kInteractive, &costs);
        ASSERT_TRUE(grant.valid());
        if (high >= 0 && i % 2 == 0) {
          // A committed key is always visible in a fresh snapshot.
          const int64_t id = static_cast<int64_t>(loader) * 1'000'000 +
                             static_cast<int64_t>(probe >> 32) %
                                 (high % 1'000'000 + 1);
          const auto row = engine.view_at(grant.snapshot())
                               .pk_lookup(tid, {db::Value::i64(id)});
          EXPECT_TRUE(row.is_ok()) << id;
        } else {
          const int64_t h = static_cast<int64_t>(probe % 4096);
          const auto hits = engine.view_at(grant.snapshot())
                                .index_range(tid, "ix_htmid",
                                             {db::Value::i64(h)},
                                             {db::Value::i64(h + 16)});
          EXPECT_TRUE(hits.is_ok());
        }
      }
    });
  }
  for (int b = 0; b < kBatchScanners; ++b) {
    threads.emplace_back([&] {
      for (int64_t i = 0; i < kOpsPerBatch; ++i) {
        db::OpCosts costs;
        const db::Admission grant =
            scheduler.admit(db::QueryLane::kBatch, &costs);
        ASSERT_TRUE(grant.valid());
        const int64_t pinned =
            engine.view_at(grant.snapshot()).row_count(tid);
        const std::vector<db::Row> rows =
            engine.view_at(grant.snapshot())
                .scan_collect(tid, [](const db::Row&) { return true; });
        // The pinned view is frozen: the scan sees exactly its row count.
        EXPECT_EQ(static_cast<int64_t>(rows.size()), pinned);
      }
    });
  }

  for (std::thread& thread : threads) thread.join();

  const db::QueryStats stats = scheduler.stats();
  EXPECT_EQ(stats.interactive.completed,
            static_cast<int64_t>(kInteractive) * kOpsPerInteractive);
  EXPECT_EQ(stats.batch.completed,
            static_cast<int64_t>(kBatchScanners) * kOpsPerBatch);
  EXPECT_EQ(stats.snapshot_pins, 0);
  EXPECT_EQ(stats.interactive.queue_depth, 0);
  EXPECT_EQ(stats.batch.queue_depth, 0);
  // Everything committed is in the final snapshot.
  const db::Snapshot snap = engine.pin_snapshot();
  EXPECT_EQ(engine.view_at(snap).row_count(tid),
            static_cast<int64_t>(kLoaders) * kTxnsPerLoader * 8);
  EXPECT_EQ(engine.live_view().row_count(tid), engine.view_at(snap).row_count(tid));
  EXPECT_TRUE(engine.verify_integrity().is_ok());
}

// Commit-heavy run: group commit must keep the WAL consistent (flushed
// bytes never exceed appended bytes; piggybacked flushes are possible).
TEST(EngineConcurrencyTest, GroupCommitAccounting) {
  db::Schema schema;
  db::TableDef t;
  t.name = "only";
  t.col("id", db::ColumnType::kInt64, false);
  t.primary_key = {"id"};
  ASSERT_TRUE(schema.add_table(t).is_ok());
  db::Engine engine(schema);
  const uint32_t tid = engine.table_id("only").value();

  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < 50; ++i) {
        const uint64_t txn = engine.begin_transaction();
        const std::vector<db::Row> rows = {{db::Value::i64(w * 1000 + i)}};
        const db::BatchResult result = engine.insert_batch(txn, tid, rows);
        EXPECT_EQ(result.rows_applied, 1);
        EXPECT_TRUE(engine.commit(txn).is_ok());
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const storage::WalStats wal = engine.wal_stats();
  EXPECT_EQ(wal.bytes_flushed, wal.bytes_appended);
  EXPECT_EQ(engine.live_view().row_count(tid), kThreads * 50);
  EXPECT_TRUE(engine.verify_integrity().is_ok());
}

}  // namespace
}  // namespace sky::core
