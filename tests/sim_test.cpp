// Tests for the discrete-event simulation environment: virtual-time
// semantics, deterministic ordering, FIFO resources, utilization accounting,
// and cross-process data visibility.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/environment.h"

namespace sky::sim {
namespace {

TEST(EnvironmentTest, EmptyRunReturnsImmediately) {
  Environment env;
  env.run();
  EXPECT_EQ(env.now(), 0);
}

TEST(EnvironmentTest, SingleProcessAdvancesClock) {
  Environment env;
  Nanos observed = -1;
  env.spawn("p", [&] {
    env.delay(100);
    env.delay(250);
    observed = env.now();
  });
  env.run();
  EXPECT_EQ(observed, 350);
  EXPECT_EQ(env.now(), 350);
}

TEST(EnvironmentTest, NegativeDelayTreatedAsZero) {
  Environment env;
  env.spawn("p", [&] { env.delay(-5); });
  env.run();
  EXPECT_EQ(env.now(), 0);
}

TEST(EnvironmentTest, ProcessesInterleaveByVirtualTime) {
  Environment env;
  std::vector<std::string> trace;
  env.spawn("a", [&] {
    env.delay(10);
    trace.push_back("a@10");
    env.delay(20);  // wakes at 30
    trace.push_back("a@30");
  });
  env.spawn("b", [&] {
    env.delay(15);
    trace.push_back("b@15");
    env.delay(20);  // wakes at 35
    trace.push_back("b@35");
  });
  env.run();
  const std::vector<std::string> expected = {"a@10", "b@15", "a@30", "b@35"};
  EXPECT_EQ(trace, expected);
  EXPECT_EQ(env.now(), 35);
}

TEST(EnvironmentTest, EqualTimesOrderedBySpawnSequence) {
  Environment env;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    env.spawn("p" + std::to_string(i), [&, i] {
      env.delay(100);
      order.push_back(i);
    });
  }
  env.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EnvironmentTest, SpawnFromInsideProcess) {
  Environment env;
  std::vector<std::string> trace;
  env.spawn("parent", [&] {
    env.delay(50);
    env.spawn("child", [&] {
      trace.push_back("child-start@" + std::to_string(env.now()));
      env.delay(25);
      trace.push_back("child-end@" + std::to_string(env.now()));
    });
    env.delay(10);
    trace.push_back("parent@" + std::to_string(env.now()));
  });
  env.run();
  // Child starts at parent's spawn time (50), parent resumes at 60.
  const std::vector<std::string> expected = {
      "child-start@50", "parent@60", "child-end@75"};
  EXPECT_EQ(trace, expected);
}

TEST(EnvironmentTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    Environment env;
    std::vector<std::pair<std::string, Nanos>> trace;
    for (int i = 0; i < 4; ++i) {
      env.spawn("w" + std::to_string(i), [&, i] {
        for (int k = 0; k < 10; ++k) {
          env.delay(7 * (i + 1));
          trace.emplace_back("w" + std::to_string(i), env.now());
        }
      });
    }
    env.run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(EnvironmentTest, CurrentProcessName) {
  Environment env;
  std::string inside;
  env.spawn("loader-3", [&] { inside = env.current_process_name(); });
  env.run();
  EXPECT_EQ(inside, "loader-3");
  EXPECT_EQ(env.current_process_name(), "");
}

TEST(EnvironmentTest, SequentialRunsAccumulateTime) {
  Environment env;
  env.spawn("first", [&] { env.delay(100); });
  env.run();
  EXPECT_EQ(env.now(), 100);
  env.spawn("second", [&] { env.delay(50); });
  env.run();
  EXPECT_EQ(env.now(), 150);
}

TEST(EnvironmentTest, ManyEventsSingleProcessFastPath) {
  Environment env;
  env.spawn("hot", [&] {
    for (int i = 0; i < 100000; ++i) env.delay(3);
  });
  env.run();
  EXPECT_EQ(env.now(), 300000);
  EXPECT_GE(env.events_processed(), 100000u);
}

// ------------------------------------------------------------- Resource ---

TEST(ResourceTest, UncontendedAcquireTakesNoTime) {
  Environment env;
  Resource cpu(env, 2, "cpu");
  Nanos at_acquire = -1;
  env.spawn("p", [&] {
    cpu.acquire();
    at_acquire = env.now();
    env.delay(10);
    cpu.release();
  });
  env.run();
  EXPECT_EQ(at_acquire, 0);
  EXPECT_EQ(cpu.available(), 2);
}

TEST(ResourceTest, ContendedAcquireWaitsForRelease) {
  Environment env;
  Resource cpu(env, 1, "cpu");
  Nanos second_got_it = -1;
  env.spawn("holder", [&] {
    cpu.acquire();
    env.delay(100);
    cpu.release();
  });
  env.spawn("waiter", [&] {
    env.delay(10);  // arrive while held
    cpu.acquire();
    second_got_it = env.now();
    cpu.release();
  });
  env.run();
  EXPECT_EQ(second_got_it, 100);
  const auto stats = cpu.stats();
  EXPECT_EQ(stats.acquires, 2u);
  EXPECT_EQ(stats.waits, 1u);
  EXPECT_EQ(stats.total_wait, 90);
  EXPECT_EQ(stats.max_wait, 90);
}

TEST(ResourceTest, FifoOrderAmongWaiters) {
  Environment env;
  Resource gate(env, 1, "gate");
  std::vector<int> order;
  env.spawn("holder", [&] {
    gate.acquire();
    env.delay(100);
    gate.release();
  });
  for (int i = 0; i < 3; ++i) {
    env.spawn("w" + std::to_string(i), [&, i] {
      env.delay(10 + i);  // deterministic arrival order 0,1,2
      gate.acquire();
      order.push_back(i);
      env.delay(5);
      gate.release();
    });
  }
  env.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(ResourceTest, WideRequestNotStarved) {
  // A waiter needing 2 units arrives before a 1-unit waiter; FIFO means the
  // later narrow request must not leapfrog it.
  Environment env;
  Resource pool(env, 2, "pool");
  std::vector<std::string> order;
  env.spawn("holder", [&] {
    pool.acquire(1);
    env.delay(100);
    pool.release(1);
  });
  env.spawn("wide", [&] {
    env.delay(10);
    pool.acquire(2);  // 1 available, must wait for the holder
    order.push_back("wide");
    pool.release(2);
  });
  env.spawn("narrow", [&] {
    env.delay(20);
    pool.acquire(1);  // 1 available, but wide is queued ahead
    order.push_back("narrow");
    pool.release(1);
  });
  env.run();
  EXPECT_EQ(order, (std::vector<std::string>{"wide", "narrow"}));
}

TEST(ResourceTest, MultiUnitCapacityAllowsParallelHolders) {
  Environment env;
  Resource cpus(env, 3, "cpus");
  std::vector<Nanos> start_times;
  for (int i = 0; i < 3; ++i) {
    env.spawn("p" + std::to_string(i), [&] {
      cpus.acquire();
      start_times.push_back(env.now());
      env.delay(50);
      cpus.release();
    });
  }
  env.run();
  ASSERT_EQ(start_times.size(), 3u);
  for (Nanos t : start_times) EXPECT_EQ(t, 0);
  EXPECT_EQ(env.now(), 50);
}

TEST(ResourceTest, TryAcquire) {
  Environment env;
  Resource gate(env, 1, "gate");
  bool first = false, second = false, after_release = false;
  env.spawn("p", [&] {
    first = gate.try_acquire();
    second = gate.try_acquire();
    gate.release();
    after_release = gate.try_acquire();
    gate.release();
  });
  env.run();
  EXPECT_TRUE(first);
  EXPECT_FALSE(second);
  EXPECT_TRUE(after_release);
}

TEST(ResourceTest, UtilizationAccounting) {
  Environment env;
  Resource cpu(env, 2, "cpu");
  env.spawn("a", [&] {
    cpu.acquire();
    env.delay(100);
    cpu.release();
  });
  env.spawn("b", [&] {
    cpu.acquire();
    env.delay(50);
    cpu.release();
    env.delay(50);  // idle tail to t=100
  });
  env.run();
  // Busy unit-time = 100 + 50 = 150 over capacity 2 * elapsed 100 = 200.
  EXPECT_NEAR(cpu.utilization(), 0.75, 1e-9);
}

TEST(ResourceTest, QueueDepthTracked) {
  Environment env;
  Resource gate(env, 1, "gate");
  env.spawn("holder", [&] {
    gate.acquire();
    env.delay(100);
    gate.release();
  });
  for (int i = 0; i < 4; ++i) {
    env.spawn("w" + std::to_string(i), [&, i] {
      env.delay(i + 1);
      gate.acquire();
      gate.release();
    });
  }
  env.run();
  EXPECT_EQ(gate.stats().max_queue_depth, 4);
}

// Data written by one process before blocking is visible to the next
// (handoff through the environment mutex establishes happens-before).
TEST(EnvironmentTest, CrossProcessDataVisibility) {
  Environment env;
  std::vector<int> shared;  // deliberately unsynchronized
  env.spawn("writer", [&] {
    for (int i = 0; i < 1000; ++i) {
      shared.push_back(i);
      env.delay(2);
    }
  });
  long long sum = 0;
  env.spawn("reader", [&] {
    for (int i = 0; i < 1000; ++i) {
      env.delay(2);
      if (!shared.empty()) sum += shared.back();
    }
  });
  env.run();
  EXPECT_GT(sum, 0);
}

// Property stress: random delays and resource holds; invariants — capacity
// never exceeded, all work completes, busy accounting consistent, and the
// run is deterministic.
struct StressParams {
  uint64_t seed;
  int processes;
  int64_t capacity;
};

class ResourceStress : public ::testing::TestWithParam<StressParams> {};

TEST_P(ResourceStress, InvariantsHold) {
  const auto& params = GetParam();
  auto run_once = [&]() {
    Environment env;
    Resource pool(env, params.capacity, "pool");
    int64_t in_use = 0;
    int64_t max_in_use = 0;
    int completed = 0;
    // Per-process RNG derived from the seed: determinism does not depend on
    // interleaving.
    for (int p = 0; p < params.processes; ++p) {
      env.spawn("p" + std::to_string(p), [&, p] {
        sky::Rng rng(params.seed * 1000 + static_cast<uint64_t>(p));
        for (int round = 0; round < 30; ++round) {
          const int64_t units = rng.uniform_int(1, params.capacity);
          env.delay(rng.uniform_int(0, 50));
          pool.acquire(units);
          in_use += units;
          max_in_use = std::max(max_in_use, in_use);
          ASSERT_LE(in_use, params.capacity);
          env.delay(rng.uniform_int(1, 40));
          in_use -= units;
          pool.release(units);
        }
        ++completed;
      });
    }
    env.run();
    EXPECT_EQ(completed, params.processes);
    EXPECT_EQ(in_use, 0);
    EXPECT_EQ(pool.available(), params.capacity);
    EXPECT_EQ(pool.stats().acquires,
              static_cast<uint64_t>(params.processes) * 30);
    EXPECT_LE(pool.utilization(), 1.0 + 1e-9);
    return std::make_pair(env.now(), max_in_use);
  };
  const auto first = run_once();
  EXPECT_EQ(first, run_once());  // deterministic replay
  EXPECT_LE(first.second, params.capacity);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ResourceStress,
    ::testing::Values(StressParams{1, 2, 1}, StressParams{2, 5, 2},
                      StressParams{3, 8, 3}, StressParams{4, 12, 6},
                      StressParams{5, 3, 8}));

// A work-queue pattern: N workers pull from a shared queue, one item each
// tick; total served must equal total enqueued, deterministically.
TEST(EnvironmentTest, WorkQueuePattern) {
  Environment env;
  std::vector<int> queue;
  for (int i = 0; i < 28; ++i) queue.push_back(i);
  std::vector<int> done_by[4];
  for (int w = 0; w < 4; ++w) {
    env.spawn("worker" + std::to_string(w), [&, w] {
      while (true) {
        if (queue.empty()) return;
        const int item = queue.back();
        queue.pop_back();
        env.delay(10 + item);  // variable "file sizes"
        done_by[w].push_back(item);
      }
    });
  }
  env.run();
  size_t total = 0;
  for (const auto& d : done_by) total += d.size();
  EXPECT_EQ(total, 28u);
}

}  // namespace
}  // namespace sky::sim
