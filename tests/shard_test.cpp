// Multi-engine scale-out battery: the HTM-range router's ownership property
// (every row lands on the shard whose trixel slice contains it, boundary
// trixels included), scatter-gather reads byte-identical to a single-shard
// oracle (pk_range / pk_lookup / cone_search), batch run-splitting under
// the JDBC prefix contract (row and columnar paths), equal-frequency
// boundary planning holding skew under 1.5 on a clustered footprint, and
// cross-shard FK reconciliation (convergence and orphan detection).
#include "shard/sharded_repository.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "db/spatial.h"
#include "htm/htm.h"

namespace sky::db {
namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr int kIndexDepth = 12;

// objects routes by position (rule 1: the HTM index); detections carry no
// position and route block-cyclically on their int64 PK (rule 4), with an
// FK into objects — the cross-shard edge reconciliation must close.
Schema test_schema() {
  Schema schema;
  TableDef obj;
  obj.name = "obj";
  obj.col("id", ColumnType::kInt64, false);
  obj.col("ra", ColumnType::kDouble, false);
  obj.col("dec", ColumnType::kDouble, false);
  obj.primary_key = {"id"};
  obj.indexes.push_back(
      IndexDef{"ix_htm", {}, false, HtmIndexSpec{"ra", "dec", kIndexDepth}});
  EXPECT_TRUE(schema.add_table(obj).is_ok());
  TableDef det;
  det.name = "det";
  det.col("id", ColumnType::kInt64, false);
  det.col("object_id", ColumnType::kInt64, false);
  det.col("flux", ColumnType::kDouble, true);
  det.primary_key = {"id"};
  det.foreign_keys.push_back(ForeignKey{{"object_id"}, "obj"});
  EXPECT_TRUE(schema.add_table(det).is_ok());
  return schema;
}

EngineOptions sharded_options(int shards,
                              std::vector<uint64_t> boundaries = {}) {
  EngineOptions options;
  options.policies.shard.shard_count = shards;
  options.policies.shard.boundaries = std::move(boundaries);
  return options;
}

// Clustered positions like the survey footprint: a band, not the full sky.
void band_catalog(Rng& rng, size_t n, std::vector<double>* ra,
                  std::vector<double>* dec) {
  for (size_t i = 0; i < n; ++i) {
    ra->push_back(rng.uniform_range(0.0, 315.0));
    dec->push_back(std::asin(rng.uniform_range(
                       std::sin(-20.0 * kPi / 180.0),
                       std::sin(20.0 * kPi / 180.0))) *
                   180.0 / kPi);
  }
}

std::vector<Row> object_rows(const std::vector<double>& ra,
                             const std::vector<double>& dec,
                             int64_t id_base = 0) {
  std::vector<Row> rows;
  rows.reserve(ra.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    rows.push_back({Value::i64(id_base + static_cast<int64_t>(i)),
                    Value::f64(ra[i]), Value::f64(dec[i])});
  }
  return rows;
}

void expect_rows_identical(const std::vector<Row>& a,
                           const std::vector<Row>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << "row " << i;
    for (size_t c = 0; c < a[i].size(); ++c) {
      EXPECT_EQ(a[i][c].compare(b[i][c]), 0)
          << "row " << i << " column " << c;
    }
  }
}

TEST(ShardRouterTest, EveryRowLandsOnItsTrixelOwner) {
  const Schema schema = test_schema();
  ShardedRepository repo(schema, sharded_options(4));
  const uint32_t obj = repo.schema().table_id("obj").value();

  Rng rng(0x5AD0001);
  std::vector<double> ra, dec;
  band_catalog(rng, 400, &ra, &dec);
  auto session = repo.make_session();
  ASSERT_TRUE(session->prepare_insert("obj").is_ok());
  const auto outcome = session->execute_batch(obj, object_rows(ra, dec));
  ASSERT_FALSE(outcome.error.has_value());
  ASSERT_TRUE(session->commit().is_ok());

  const ShardRouter& router = repo.router();
  const int depth = router.policy().htm_depth;
  int64_t seen = 0;
  const ShardedReadView view = repo.read_view();
  for (int s = 0; s < repo.shard_count(); ++s) {
    const htm::IdRange range = router.shard_range(s);
    const std::vector<Row> rows =
        view.shard_view(s).scan_collect(obj, [](const Row&) { return true; });
    for (const Row& row : rows) {
      const uint64_t trixel =
          htm::htm_id_radec(row[1].as_f64(), row[2].as_f64(), depth);
      EXPECT_GE(trixel, range.first);
      EXPECT_LT(trixel, range.last);
      EXPECT_EQ(router.shard_of_trixel(trixel), s);
      ++seen;
    }
  }
  EXPECT_EQ(seen, static_cast<int64_t>(ra.size()));
  EXPECT_EQ(repo.total_rows(), static_cast<int64_t>(ra.size()));
}

TEST(ShardRouterTest, BoundaryTrixelsBelongToTheUpperShard) {
  const Schema schema = test_schema();
  ShardedRepository repo(schema, sharded_options(4));
  const ShardRouter& router = repo.router();
  for (int s = 1; s < router.shard_count(); ++s) {
    const uint64_t boundary = router.shard_range(s).first;
    // A slice's first trixel is inclusive; its predecessor belongs below.
    EXPECT_EQ(router.shard_of_trixel(boundary), s);
    EXPECT_EQ(router.shard_of_trixel(boundary - 1), s - 1);
    // Descendants of a boundary trixel (deeper ids sharing its bit prefix)
    // stay with the boundary's shard.
    EXPECT_EQ(router.shard_of_trixel(boundary * 4 + 3), s);
  }
}

TEST(ShardRouterTest, SegmentsCoverRangeExactlyAtIndexDepth) {
  const Schema schema = test_schema();
  ShardedRepository repo(schema, sharded_options(4));
  const ShardRouter& router = repo.router();
  // A range spanning the whole id space at the index depth must split into
  // contiguous, non-overlapping, ascending per-shard segments.
  const uint64_t lo = 8ull << (2 * kIndexDepth);
  const uint64_t hi = 16ull << (2 * kIndexDepth);
  const auto segments = router.segments_for_range(lo, hi, kIndexDepth);
  ASSERT_FALSE(segments.empty());
  EXPECT_EQ(segments.front().first, lo);
  EXPECT_EQ(segments.back().last, hi);
  for (size_t i = 1; i < segments.size(); ++i) {
    EXPECT_EQ(segments[i].first, segments[i - 1].last);
    EXPECT_NE(segments[i].shard, segments[i - 1].shard);
  }
}

TEST(ShardRouterTest, PlannedBoundariesHoldSkewUnderClusteredLoad) {
  const Schema schema = test_schema();
  Rng rng(0x5AD0002);
  std::vector<double> ra, dec;
  band_catalog(rng, 2000, &ra, &dec);

  // Equal-frequency boundaries from a position sample at the policy depth.
  const int depth = core::ShardPolicy{}.htm_depth;
  std::vector<uint64_t> sample;
  for (size_t i = 0; i < ra.size(); ++i) {
    sample.push_back(htm::htm_id_radec(ra[i], dec[i], depth));
  }
  const std::vector<uint64_t> boundaries =
      ShardRouter::plan_boundaries(sample, 4);
  ASSERT_EQ(boundaries.size(), 3u);

  ShardedRepository repo(schema, sharded_options(4, boundaries));
  const uint32_t obj = repo.schema().table_id("obj").value();
  auto session = repo.make_session();
  const auto outcome = session->execute_batch(obj, object_rows(ra, dec));
  ASSERT_FALSE(outcome.error.has_value());
  ASSERT_TRUE(session->commit().is_ok());

  EXPECT_LE(repo.shard_skew(), 1.5);
  for (const int64_t rows : repo.shard_rows()) EXPECT_GT(rows, 0);
}

class ShardScatterGatherTest : public ::testing::Test {
 protected:
  ShardScatterGatherTest()
      : schema_(test_schema()),
        repo_(schema_, sharded_options(3)),
        oracle_(schema_) {
    obj_ = repo_.schema().table_id("obj").value();
    det_ = repo_.schema().table_id("det").value();
  }

  // Load the identical row stream into the sharded repository (through a
  // session) and the single-engine oracle (directly).
  void load_both(uint32_t table, const std::vector<Row>& rows) {
    auto session = repo_.make_session();
    const auto outcome = session->execute_batch(table, rows);
    ASSERT_FALSE(outcome.error.has_value())
        << outcome.error->status.message();
    ASSERT_TRUE(session->commit().is_ok());
    const uint64_t txn = oracle_.begin_transaction();
    for (const Row& row : rows) {
      OpCosts costs;
      ASSERT_TRUE(oracle_.insert_row(txn, table, row, costs).is_ok());
    }
    ASSERT_TRUE(oracle_.commit(txn).is_ok());
  }

  Schema schema_;
  ShardedRepository repo_;
  Engine oracle_;
  uint32_t obj_ = 0;
  uint32_t det_ = 0;
};

TEST_F(ShardScatterGatherTest, PkRangeByteIdenticalToOracle) {
  Rng rng(0x5AD0003);
  std::vector<double> ra, dec;
  band_catalog(rng, 300, &ra, &dec);
  load_both(obj_, object_rows(ra, dec));

  const ShardedReadView view = repo_.read_view();
  EXPECT_EQ(view.row_count(obj_), oracle_.live_view().row_count(obj_));

  const auto sharded =
      view.pk_range(obj_, {Value::i64(50)}, {Value::i64(222)});
  const auto single = oracle_.live_view().pk_range(obj_, {Value::i64(50)},
                                                   {Value::i64(222)});
  ASSERT_TRUE(sharded.is_ok());
  ASSERT_TRUE(single.is_ok());
  EXPECT_FALSE(single->empty());
  expect_rows_identical(*sharded, *single);
}

TEST_F(ShardScatterGatherTest, PkLookupFindsRowsOnEveryShard) {
  Rng rng(0x5AD0004);
  std::vector<double> ra, dec;
  band_catalog(rng, 200, &ra, &dec);
  load_both(obj_, object_rows(ra, dec));

  const ShardedReadView view = repo_.read_view();
  for (const int64_t id : {int64_t{0}, int64_t{77}, int64_t{199}}) {
    const auto sharded = view.pk_lookup(obj_, {Value::i64(id)});
    const auto single = oracle_.live_view().pk_lookup(obj_, {Value::i64(id)});
    ASSERT_TRUE(sharded.is_ok());
    ASSERT_TRUE(single.is_ok());
    expect_rows_identical({*sharded}, {*single});
  }
  EXPECT_EQ(view.pk_lookup(obj_, {Value::i64(100000)}).status().code(),
            ErrorCode::kNotFound);
}

TEST_F(ShardScatterGatherTest, ConeSearchByteIdenticalAndPruned) {
  Rng rng(0x5AD0005);
  std::vector<double> ra, dec;
  band_catalog(rng, 600, &ra, &dec);
  load_both(obj_, object_rows(ra, dec));

  const auto spec = spatial::resolve_spatial(oracle_, obj_);
  ASSERT_TRUE(spec.is_ok());
  const ShardedReadView view = repo_.read_view();
  int cones_pruned = 0;
  for (int probe = 0; probe < 12; ++probe) {
    const double center_ra = rng.uniform_range(0.0, 315.0);
    const double center_dec = rng.uniform_range(-18.0, 18.0);
    const double radius = rng.uniform_range(0.2, 2.0);
    OpCosts sharded_costs;
    int shards_probed = 0;
    const auto sharded = shard::cone_search(view, *spec, center_ra,
                                            center_dec, radius,
                                            &sharded_costs, &shards_probed);
    OpCosts oracle_costs;
    const auto single =
        spatial::cone_search(oracle_.live_view(), *spec, center_ra,
                             center_dec, radius, &oracle_costs);
    ASSERT_TRUE(sharded.is_ok());
    ASSERT_TRUE(single.is_ok());
    expect_rows_identical(*sharded, *single);
    EXPECT_EQ(sharded_costs.zone_scan_rows, oracle_costs.zone_scan_rows);
    EXPECT_EQ(sharded_costs.xmatch_pairs, oracle_costs.xmatch_pairs);
    EXPECT_GE(shards_probed, 1);
    if (shards_probed < repo_.shard_count()) ++cones_pruned;
  }
  // Small cones inside one slice must not broadcast to every shard.
  EXPECT_GT(cones_pruned, 0);
}

TEST_F(ShardScatterGatherTest, XmatchMatchesSingleEngineOracle) {
  Rng rng(0x5AD0006);
  std::vector<double> ra, dec;
  band_catalog(rng, 250, &ra, &dec);
  load_both(obj_, object_rows(ra, dec));

  const auto spec = spatial::resolve_spatial(oracle_, obj_);
  ASSERT_TRUE(spec.is_ok());
  spatial::XmatchOptions options;
  options.radius_deg = 0.5;
  const ShardedReadView view = repo_.read_view();
  const auto sharded =
      shard::xmatch(view, *spec, view, *spec, options);
  const auto single = spatial::xmatch(oracle_.live_view(), *spec,
                                      oracle_.live_view(), *spec, options);
  ASSERT_TRUE(sharded.is_ok());
  ASSERT_TRUE(single.is_ok());
  // Pair sets match; indices refer to different collection orders (shard-
  // major vs. single-heap), so compare resolved PK pairs, not raw indices.
  EXPECT_EQ(sharded->pairs.size(), single->pairs.size());
  EXPECT_EQ(sharded->report.pairs, single->report.pairs);
  EXPECT_FALSE(sharded->pairs.empty());
}

TEST_F(ShardScatterGatherTest, ColumnBatchRunsMatchRowBatchResult) {
  Rng rng(0x5AD0007);
  std::vector<double> ra, dec;
  band_catalog(rng, 150, &ra, &dec);
  const std::vector<Row> rows = object_rows(ra, dec);

  ColumnBatch batch(repo_.schema().table(obj_));
  for (const Row& row : rows) {
    batch.push_i64(0, row[0].as_i64());
    batch.push_f64(1, row[1].as_f64());
    batch.push_f64(2, row[2].as_f64());
  }
  auto session = repo_.make_session();
  const auto outcome =
      session->execute_column_batch(obj_, batch, 0, batch.size());
  ASSERT_FALSE(outcome.error.has_value());
  EXPECT_EQ(outcome.applied, static_cast<int64_t>(rows.size()));
  ASSERT_TRUE(session->commit().is_ok());

  const uint64_t txn = oracle_.begin_transaction();
  for (const Row& row : rows) {
    OpCosts costs;
    ASSERT_TRUE(oracle_.insert_row(txn, obj_, row, costs).is_ok());
  }
  ASSERT_TRUE(oracle_.commit(txn).is_ok());

  const auto sharded = repo_.read_view().pk_range(
      obj_, {Value::i64(0)}, {Value::i64(1000)});
  const auto single = oracle_.live_view().pk_range(obj_, {Value::i64(0)},
                                                   {Value::i64(1000)});
  ASSERT_TRUE(sharded.is_ok());
  ASSERT_TRUE(single.is_ok());
  expect_rows_identical(*sharded, *single);
}

TEST_F(ShardScatterGatherTest, BatchErrorKeepsJdbcPrefixContract) {
  Rng rng(0x5AD0008);
  std::vector<double> ra, dec;
  band_catalog(rng, 60, &ra, &dec);
  std::vector<Row> rows = object_rows(ra, dec);
  // Duplicate PK mid-batch: everything before it stays applied, the error
  // reports the original batch index, the tail is discarded. The duplicate
  // copies row 7's position too, so both land on the same shard — PK
  // uniqueness on position-routed tables is enforced per shard (see
  // DESIGN.md §12).
  const size_t dup_at = 40;
  rows[dup_at] = rows[7];

  auto session = repo_.make_session();
  const auto outcome = session->execute_batch(obj_, rows);
  ASSERT_TRUE(outcome.error.has_value());
  EXPECT_EQ(outcome.error->row_index, dup_at);
  EXPECT_EQ(outcome.applied, static_cast<int64_t>(dup_at));
  ASSERT_TRUE(session->commit().is_ok());

  const ShardedReadView view = repo_.read_view();
  EXPECT_EQ(view.row_count(obj_), static_cast<int64_t>(dup_at));
  // A row from the discarded tail must not exist anywhere.
  EXPECT_EQ(view.pk_lookup(obj_, {rows[dup_at + 5][0]}).status().code(),
            ErrorCode::kNotFound);
}

TEST(ShardFkTest, ReconciliationConvergesAcrossShards) {
  const Schema schema = test_schema();
  ShardedRepository repo(schema, sharded_options(4));
  const uint32_t obj = repo.schema().table_id("obj").value();
  const uint32_t det = repo.schema().table_id("det").value();

  Rng rng(0x5AD0009);
  std::vector<double> ra, dec;
  band_catalog(rng, 120, &ra, &dec);
  auto session = repo.make_session();
  ASSERT_FALSE(
      session->execute_batch(obj, object_rows(ra, dec)).error.has_value());
  // Children reference parents scattered across shards; the children
  // themselves route block-cyclically by their own id.
  std::vector<Row> children;
  for (int64_t i = 0; i < 300; ++i) {
    children.push_back({Value::i64(i * 300), Value::i64(i % 120),
                        Value::f64(static_cast<double>(i))});
  }
  ASSERT_FALSE(session->execute_batch(det, children).error.has_value());
  ASSERT_TRUE(session->commit().is_ok());

  const auto report = repo.reconcile_foreign_keys();
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(report->converged());
  EXPECT_EQ(report->orphans, 0);
  EXPECT_EQ(report->rows_checked, 300);
  EXPECT_GT(report->remote_hits, 0);  // some parents live off-shard
  EXPECT_TRUE(repo.verify_integrity().is_ok());
}

TEST(ShardFkTest, OrphanedChildIsReported) {
  const Schema schema = test_schema();
  ShardedRepository repo(schema, sharded_options(4));
  const uint32_t obj = repo.schema().table_id("obj").value();
  const uint32_t det = repo.schema().table_id("det").value();

  auto session = repo.make_session();
  const std::vector<Row> parents = {
      {Value::i64(1), Value::f64(10.0), Value::f64(5.0)}};
  ASSERT_FALSE(session->execute_batch(obj, parents).error.has_value());
  // Shard engines defer FK checks, so the orphan is accepted at ingest and
  // must surface in reconciliation instead.
  const std::vector<Row> children = {
      {Value::i64(1), Value::i64(1), Value::f64(1.0)},
      {Value::i64(2), Value::i64(999), Value::f64(2.0)}};
  ASSERT_FALSE(session->execute_batch(det, children).error.has_value());
  ASSERT_TRUE(session->commit().is_ok());

  const auto report = repo.reconcile_foreign_keys();
  ASSERT_TRUE(report.is_ok());
  EXPECT_FALSE(report->converged());
  EXPECT_EQ(report->orphans, 1);
  ASSERT_EQ(report->orphan_samples.size(), 1u);
  EXPECT_NE(report->orphan_samples[0].find("det"), std::string::npos);
}

TEST(ShardSingleTest, OneShardKeepsInlineForeignKeys) {
  const Schema schema = test_schema();
  ShardedRepository repo(schema, sharded_options(1));
  EXPECT_EQ(repo.shard_count(), 1);
  const uint32_t det = repo.schema().table_id("det").value();
  auto session = repo.make_session();
  // With one shard the engine's inline FK check still fires at ingest.
  const std::vector<Row> orphan = {
      {Value::i64(1), Value::i64(999), Value::f64(1.0)}};
  const auto outcome = session->execute_batch(det, orphan);
  ASSERT_TRUE(outcome.error.has_value());
}

}  // namespace
}  // namespace sky::db
