// Snapshot-read battery: committed-prefix visibility, frozen pins,
// quiesced equivalence with the live query family, the zero-latch
// regression guarantee, and a randomized loader/scanner property test of
// snapshot consistency under concurrency (runs under the sanitizer label).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "db/engine.h"
#include "db/query_scheduler.h"
#include "index/key_codec.h"

namespace sky::db {
namespace {

// One table, int64 PK, non-unique secondary on batch_id: every row of a
// transaction carries (batch_id, batch_seq, batch_total) so a reader can
// prove it saw whole transactions and nothing else.
Schema batches_schema() {
  Schema schema;
  TableDef batches;
  batches.name = "batches";
  batches.col("pk", ColumnType::kInt64, false);
  batches.col("batch_id", ColumnType::kInt64, false);
  batches.col("batch_seq", ColumnType::kInt64, false);
  batches.col("batch_total", ColumnType::kInt64, false);
  batches.primary_key = {"pk"};
  batches.indexes.push_back(IndexDef{"ix_batch", {"batch_id"}, false, {}});
  EXPECT_TRUE(schema.add_table(batches).is_ok());
  return schema;
}

Row batch_row(int64_t pk, int64_t batch_id, int64_t seq, int64_t total) {
  return {Value::i64(pk), Value::i64(batch_id), Value::i64(seq),
          Value::i64(total)};
}

class SnapshotTest : public ::testing::Test {
 protected:
  SnapshotTest() : engine_(batches_schema()) {
    table_ = engine_.table_id("batches").value();
  }

  // Insert rows [pk_base, pk_base + total) as one committed transaction.
  void commit_batch(int64_t pk_base, int64_t batch_id, int64_t total) {
    const uint64_t txn = engine_.begin_transaction();
    for (int64_t seq = 0; seq < total; ++seq) {
      OpCosts costs;
      ASSERT_TRUE(engine_
                      .insert_row(txn, table_,
                                  batch_row(pk_base + seq, batch_id, seq,
                                            total),
                                  costs)
                      .is_ok());
    }
    ASSERT_TRUE(engine_.commit(txn).is_ok());
  }

  Engine engine_;
  uint32_t table_ = 0;
};

TEST_F(SnapshotTest, PinSeesOnlyCommittedPrefix) {
  commit_batch(0, 1, 4);
  const Snapshot before = engine_.pin_snapshot();
  EXPECT_EQ(engine_.view_at(before).row_count(table_), 4);

  // Uncommitted rows are live-visible (read-uncommitted two-phase insert)
  // but must not appear in any snapshot.
  const uint64_t txn = engine_.begin_transaction();
  OpCosts costs;
  ASSERT_TRUE(
      engine_.insert_row(txn, table_, batch_row(100, 2, 0, 2), costs).is_ok());
  ASSERT_TRUE(
      engine_.insert_row(txn, table_, batch_row(101, 2, 1, 2), costs).is_ok());
  EXPECT_EQ(engine_.live_view().row_count(table_), 6);  // live sees the pending rows
  EXPECT_EQ(engine_.view_at(before).row_count(table_), 4);
  const Snapshot during = engine_.pin_snapshot();
  EXPECT_EQ(engine_.view_at(during).row_count(table_), 4);
  EXPECT_FALSE(
      engine_.view_at(during).pk_lookup(table_, {Value::i64(100)}).is_ok());

  ASSERT_TRUE(engine_.commit(txn).is_ok());
  // Pins taken before the commit stay frozen; a fresh pin advances.
  EXPECT_EQ(engine_.view_at(before).row_count(table_), 4);
  EXPECT_EQ(engine_.view_at(during).row_count(table_), 4);
  const Snapshot after = engine_.pin_snapshot();
  EXPECT_EQ(engine_.view_at(after).row_count(table_), 6);
  EXPECT_GT(after.read_lsn(), during.read_lsn());
  EXPECT_TRUE(
      engine_.view_at(after).pk_lookup(table_, {Value::i64(100)}).is_ok());
}

TEST_F(SnapshotTest, RolledBackRowsNeverPublished) {
  commit_batch(0, 1, 2);
  const uint64_t txn = engine_.begin_transaction();
  OpCosts costs;
  ASSERT_TRUE(
      engine_.insert_row(txn, table_, batch_row(50, 9, 0, 1), costs).is_ok());
  ASSERT_TRUE(engine_.rollback(txn).is_ok());
  const Snapshot snap = engine_.pin_snapshot();
  EXPECT_EQ(engine_.view_at(snap).row_count(table_), 2);
  EXPECT_FALSE(
      engine_.view_at(snap).pk_lookup(table_, {Value::i64(50)}).is_ok());
  EXPECT_TRUE(engine_.verify_integrity().is_ok());
}

TEST_F(SnapshotTest, QuiescedEquivalenceWithLiveReads) {
  // Mixed row and columnar commits, then compare every snapshot_* read
  // against its live twin on the quiesced engine.
  commit_batch(0, 1, 8);
  {
    const uint64_t txn = engine_.begin_transaction();
    ColumnBatch batch(engine_.schema().table(table_));
    for (int64_t seq = 0; seq < 16; ++seq) {
      batch.push_i64(0, 100 + seq);
      batch.push_i64(1, 2);
      batch.push_i64(2, seq);
      batch.push_i64(3, 16);
    }
    const BatchResult result = engine_.insert_column_batch(txn, table_, batch);
    ASSERT_FALSE(result.error.has_value());
    ASSERT_TRUE(engine_.commit(txn).is_ok());
  }
  commit_batch(200, 3, 4);

  const Snapshot snap = engine_.pin_snapshot();
  EXPECT_EQ(engine_.view_at(snap).row_count(table_),
            engine_.live_view().row_count(table_));

  const auto all_live =
      engine_.live_view().scan_collect(table_, [](const Row&) { return true; });
  const auto all_snap = engine_.view_at(snap).scan_collect(
      table_, [](const Row&) { return true; });
  EXPECT_EQ(all_live, all_snap);

  const auto live_range =
      engine_.live_view().pk_range(table_, {Value::i64(0)}, {Value::i64(150)});
  const auto snap_range =
      engine_.view_at(snap).pk_range(table_, {Value::i64(0)},
                                {Value::i64(150)});
  ASSERT_TRUE(live_range.is_ok());
  ASSERT_TRUE(snap_range.is_ok());
  EXPECT_EQ(*live_range, *snap_range);

  const auto live_ix =
      engine_.live_view().index_range(table_, "ix_batch", {Value::i64(2)},
                          {Value::i64(3)});
  const auto snap_ix = engine_.view_at(snap).index_range(
      table_, "ix_batch", {Value::i64(2)}, {Value::i64(3)});
  ASSERT_TRUE(live_ix.is_ok());
  ASSERT_TRUE(snap_ix.is_ok());
  EXPECT_EQ(live_ix->size(), 16u);
  EXPECT_EQ(*live_ix, *snap_ix);

  for (const int64_t pk : {0L, 107L, 203L}) {
    const auto live = engine_.live_view().pk_lookup(table_, {Value::i64(pk)});
    const auto snapped =
        engine_.view_at(snap).pk_lookup(table_, {Value::i64(pk)});
    ASSERT_TRUE(live.is_ok());
    ASSERT_TRUE(snapped.is_ok());
    EXPECT_EQ(*live, *snapped);
  }
  EXPECT_FALSE(
      engine_.view_at(snap).pk_lookup(table_, {Value::i64(9999)}).is_ok());

  // Physical view matches the heap exactly (quiesced).
  std::multiset<std::pair<uint32_t, std::string>> live_heap;
  ASSERT_TRUE(engine_.live_view()
                  .scan_heap(table_,
                             [&](storage::SlotId slot, std::string_view bytes) {
                               live_heap.emplace(slot.extent,
                                                 std::string(bytes));
                             })
                  .is_ok());
  std::multiset<std::pair<uint32_t, std::string>> snap_heap;
  ASSERT_TRUE(engine_
                  .view_at(snap).scan_heap(table_,
                      [&](storage::SlotId slot, std::string_view bytes) {
                        snap_heap.emplace(slot.extent, std::string(bytes));
                      })
                  .is_ok());
  EXPECT_EQ(live_heap, snap_heap);
}

TEST_F(SnapshotTest, BulkLoadSortedPublishesOneChunk) {
  std::vector<Row> rows;
  for (int64_t pk = 0; pk < 32; ++pk) {
    rows.push_back(batch_row(pk, pk % 4, pk, 32));
  }
  ASSERT_TRUE(engine_.bulk_load_sorted(table_, rows).is_ok());
  const SnapshotStats stats = engine_.snapshot_stats();
  EXPECT_EQ(stats.chunks_published, 1);
  EXPECT_EQ(stats.rows_published, 32);
  const Snapshot snap = engine_.pin_snapshot();
  EXPECT_EQ(engine_.view_at(snap).row_count(table_), 32);
  const auto by_batch = engine_.view_at(snap).index_range(
      table_, "ix_batch", {Value::i64(1)}, {Value::i64(2)});
  ASSERT_TRUE(by_batch.is_ok());
  EXPECT_EQ(by_batch->size(), 8u);
}

TEST_F(SnapshotTest, ChunkPredatingIndexFailsClosed) {
  commit_batch(0, 1, 4);
  ASSERT_TRUE(engine_.set_index_enabled(table_, "ix_batch", false).is_ok());
  commit_batch(100, 2, 4);  // chunk committed with the index disabled
  ASSERT_TRUE(engine_.set_index_enabled(table_, "ix_batch", true).is_ok());
  ASSERT_TRUE(engine_.rebuild_index(table_, "ix_batch").is_ok());
  commit_batch(200, 3, 4);

  // The live index was rebuilt and serves everything; the snapshot chain
  // still contains the index-less chunk and must fail closed rather than
  // silently miss its rows.
  const auto live = engine_.live_view().index_range(table_, "ix_batch", {Value::i64(2)},
                                        {Value::i64(3)});
  ASSERT_TRUE(live.is_ok());
  EXPECT_EQ(live->size(), 4u);
  const Snapshot snap = engine_.pin_snapshot();
  const auto snapped = engine_.view_at(snap).index_range(
      table_, "ix_batch", {Value::i64(2)}, {Value::i64(3)});
  ASSERT_FALSE(snapped.is_ok());
  EXPECT_EQ(snapped.status().code(), ErrorCode::kFailedPrecondition);
  // PK reads are unaffected.
  const auto pk = engine_.view_at(snap).pk_range(table_, {Value::i64(0)},
                                            {Value::i64(1000)});
  ASSERT_TRUE(pk.is_ok());
  EXPECT_EQ(pk->size(), 12u);
}

// Fail-closed symmetry: an index that cannot serve a read reports one
// canonical code — kFailedPrecondition — on every secondary read spelling,
// live or snapshot, value-tuple or encoded-key. The live reads fail because
// the index is disabled right now; the snapshot reads fail because a chunk
// in the pinned chain was committed without index entries. Callers branch
// on the code only (never the message), so the four paths must agree.
TEST_F(SnapshotTest, IndexUnavailableIsSymmetricAcrossReadPaths) {
  commit_batch(0, 1, 4);
  ASSERT_TRUE(engine_.set_index_enabled(table_, "ix_batch", false).is_ok());
  commit_batch(100, 2, 4);  // chunk committed with the index disabled
  const Snapshot stale = engine_.pin_snapshot();

  index::KeyEncoder enc;
  enc.append_int64(1);
  const std::string lo = enc.take();
  enc.clear();
  enc.append_int64(3);
  const std::string hi = enc.take();

  struct ReadCase {
    const char* name;
    bool snapshot;  // read through the stale pin instead of the live state
    bool encoded;   // encoded-key spelling instead of value tuples
  };
  const ReadCase kCases[] = {
      {"live/index_range", false, false},
      {"live/index_encoded_range", false, true},
      {"snapshot/index_range", true, false},
      {"snapshot/index_encoded_range", true, true},
  };
  const auto probe = [&](const ReadCase& c) {
    const ReadView view =
        c.snapshot ? engine_.view_at(stale) : engine_.live_view();
    return c.encoded
               ? view.index_encoded_range(table_, "ix_batch", lo, hi).status()
               : view.index_range(table_, "ix_batch", {Value::i64(1)},
                                  {Value::i64(3)})
                     .status();
  };

  for (const ReadCase& c : kCases) {
    EXPECT_EQ(probe(c).code(), ErrorCode::kFailedPrecondition) << c.name;
  }

  // Re-enabling and rebuilding heals the live paths only: the stale pin
  // still chains over the index-less chunk and keeps failing closed.
  ASSERT_TRUE(engine_.set_index_enabled(table_, "ix_batch", true).is_ok());
  ASSERT_TRUE(engine_.rebuild_index(table_, "ix_batch").is_ok());
  for (const ReadCase& c : kCases) {
    if (c.snapshot) {
      EXPECT_EQ(probe(c).code(), ErrorCode::kFailedPrecondition) << c.name;
    } else {
      EXPECT_TRUE(probe(c).is_ok()) << c.name;
    }
  }
}

// Regression for the tentpole guarantee: a snapshot read completes without
// touching any latch even while a loader holds the extent latch inside a
// long modeled append. Live reads would block here; the snapshot path's
// lock-wait cost and the scheduler's gate-wait counters must stay zero.
TEST_F(SnapshotTest, ScanAcquiresZeroLatchesWhileLoaderHoldsExtent) {
  EngineOptions options;
  options.heap_extents = 1;  // one extent: any latch share would collide
  options.latency.extent_append_write = 30 * kMillisecond;
  Engine engine(batches_schema(), options);
  const uint32_t table = engine.table_id("batches").value();
  {
    const uint64_t txn = engine.begin_transaction();
    for (int64_t seq = 0; seq < 4; ++seq) {
      OpCosts costs;
      ASSERT_TRUE(
          engine.insert_row(txn, table, batch_row(seq, 1, seq, 4), costs)
              .is_ok());
    }
    ASSERT_TRUE(engine.commit(txn).is_ok());
  }

  QueryScheduler scheduler(engine);
  std::atomic<bool> loader_started{false};
  std::thread loader([&] {
    const uint64_t txn = engine.begin_transaction();
    std::vector<Row> rows;
    for (int64_t seq = 0; seq < 20; ++seq) {
      rows.push_back(batch_row(100 + seq, 2, seq, 20));
    }
    loader_started.store(true);
    // ~600 ms of extent-latch holds (30 ms per appended row).
    const BatchResult result = engine.insert_batch(txn, table, rows);
    ASSERT_FALSE(result.error.has_value());
    ASSERT_TRUE(engine.commit(txn).is_ok());
  });
  while (!loader_started.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(60));

  OpCosts costs;
  const auto begin = std::chrono::steady_clock::now();
  const Admission admission =
      scheduler.admit(QueryLane::kInteractive, &costs);
  const auto rows = engine.view_at(admission.snapshot())
                        .scan_collect(table, [](const Row&) { return true; },
                                      &costs);
  const auto hit =
      engine.view_at(admission.snapshot()).pk_lookup(table, {Value::i64(0)});
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - begin)
                           .count();
  EXPECT_EQ(rows.size(), 4u);  // the committed prefix only
  ASSERT_TRUE(hit.is_ok());
  EXPECT_EQ(costs.lock_wait_ns, 0);
  EXPECT_EQ(scheduler.stats().interactive.gate.waits, 0u);
  // Far below a single 30 ms extent hold — the reads queued on nothing.
  EXPECT_LT(elapsed, 400);
  loader.join();
}

// Randomized property: under concurrent loaders (mixed row/columnar
// batches, occasional rollbacks), every pin observes exactly a set of whole
// committed transactions — no torn batch, no rolled-back row, unique PKs —
// and re-pins are monotone (read_lsn, row count, batch-id set).
TEST_F(SnapshotTest, ConcurrentLoadersSnapshotConsistencyProperty) {
  constexpr int kLoaders = 4;
  constexpr int kScanners = 2;
  constexpr int kTxnsPerLoader = 60;
  Engine engine(batches_schema(), EngineOptions{});
  const uint32_t table = engine.table_id("batches").value();

  std::atomic<int64_t> next_pk{0};
  std::atomic<int64_t> next_batch{1};
  std::atomic<int> loaders_done{0};
  std::mutex ledger_mu;
  std::set<int64_t> committed_ids;
  std::set<int64_t> rolled_back_ids;

  std::vector<std::thread> threads;
  for (int w = 0; w < kLoaders; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(7000 + static_cast<uint64_t>(w));
      for (int t = 0; t < kTxnsPerLoader; ++t) {
        const int64_t total = rng.uniform_int(1, 24);
        const int64_t pk_base = next_pk.fetch_add(total);
        const int64_t batch_id = next_batch.fetch_add(1);
        const uint64_t txn = engine.begin_transaction();
        if (rng.bernoulli(0.5)) {
          ColumnBatch batch(engine.schema().table(table));
          for (int64_t seq = 0; seq < total; ++seq) {
            batch.push_i64(0, pk_base + seq);
            batch.push_i64(1, batch_id);
            batch.push_i64(2, seq);
            batch.push_i64(3, total);
          }
          const BatchResult result =
              engine.insert_column_batch(txn, table, batch);
          ASSERT_FALSE(result.error.has_value());
        } else {
          std::vector<Row> rows;
          for (int64_t seq = 0; seq < total; ++seq) {
            rows.push_back(batch_row(pk_base + seq, batch_id, seq, total));
          }
          const BatchResult result = engine.insert_batch(txn, table, rows);
          ASSERT_FALSE(result.error.has_value());
        }
        if (rng.bernoulli(0.1)) {
          ASSERT_TRUE(engine.rollback(txn).is_ok());
          const std::scoped_lock lock(ledger_mu);
          rolled_back_ids.insert(batch_id);
        } else {
          ASSERT_TRUE(engine.commit(txn).is_ok());
          const std::scoped_lock lock(ledger_mu);
          committed_ids.insert(batch_id);
        }
      }
      loaders_done.fetch_add(1);
    });
  }

  for (int s = 0; s < kScanners; ++s) {
    threads.emplace_back([&, s] {
      Rng rng(31000 + static_cast<uint64_t>(s));
      uint64_t last_lsn = 0;
      int64_t last_rows = 0;
      std::set<int64_t> last_ids;
      while (loaders_done.load() < kLoaders) {
        const Snapshot snap = engine.pin_snapshot();
        ASSERT_GE(snap.read_lsn(), last_lsn);
        const int64_t rows = engine.view_at(snap).row_count(table);
        ASSERT_GE(rows, last_rows);

        std::map<int64_t, std::pair<int64_t, int64_t>> seen;  // id -> (n,total)
        std::set<int64_t> pks;
        int64_t visited = 0;
        const auto all = engine.view_at(snap).scan_collect(
            table, [](const Row&) { return true; });
        for (const Row& row : all) {
          ++visited;
          ASSERT_TRUE(pks.insert(row[0].as_i64()).second)
              << "duplicate pk in one snapshot";
          auto& [n, batch_total] = seen[row[1].as_i64()];
          ++n;
          batch_total = row[3].as_i64();
        }
        ASSERT_EQ(visited, rows);
        std::set<int64_t> ids;
        for (const auto& [batch_id, counts] : seen) {
          ASSERT_EQ(counts.first, counts.second)
              << "torn batch " << batch_id << " in snapshot at lsn "
              << snap.read_lsn();
          ids.insert(batch_id);
        }
        for (const int64_t batch_id : last_ids) {
          ASSERT_TRUE(ids.count(batch_id) > 0)
              << "batch " << batch_id << " vanished on re-pin";
        }
        // Spot-check the secondary-index path under load: a batch that the
        // scan proved visible must be fully readable through ix_batch.
        if (!ids.empty() && rng.bernoulli(0.5)) {
          const int64_t probe = *ids.begin();
          const auto by_index = engine.view_at(snap).index_range(
              table, "ix_batch", {Value::i64(probe)},
              {Value::i64(probe + 1)});
          ASSERT_TRUE(by_index.is_ok());
          ASSERT_EQ(static_cast<int64_t>(by_index->size()),
                    seen[probe].second);
        }
        last_lsn = snap.read_lsn();
        last_rows = rows;
        last_ids = std::move(ids);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Quiesced: the final pin is the committed ledger exactly, and matches
  // the live scan.
  const Snapshot final_snap = engine.pin_snapshot();
  const auto all = engine.view_at(final_snap).scan_collect(
      table, [](const Row&) { return true; });
  std::set<int64_t> final_ids;
  for (const Row& row : all) final_ids.insert(row[1].as_i64());
  EXPECT_EQ(final_ids, committed_ids);
  for (const int64_t batch_id : rolled_back_ids) {
    EXPECT_EQ(final_ids.count(batch_id), 0u);
  }
  const auto live =
      engine.live_view().scan_collect(table, [](const Row&) { return true; });
  EXPECT_EQ(all, live);
  EXPECT_TRUE(engine.verify_integrity().is_ok());
  const SnapshotStats stats = engine.snapshot_stats();
  EXPECT_EQ(stats.active_pins, 1);  // final_snap
  EXPECT_EQ(stats.rows_published, engine.live_view().row_count(table));
}

}  // namespace
}  // namespace sky::db
