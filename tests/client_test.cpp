// Client-layer tests: JDBC batch semantics through both session types,
// lazy transactions, commit behaviour, cost-model pricing, and virtual-time
// accounting in simulation mode.
#include <gtest/gtest.h>

#include <memory>

#include "client/session.h"
#include "client/sim_session.h"
#include "db/engine.h"
#include "sim/environment.h"

namespace sky::client {
namespace {

db::Schema two_table_schema() {
  db::Schema schema;
  db::TableDef parent;
  parent.name = "frames";
  parent.col("frame_id", db::ColumnType::kInt64, false);
  parent.primary_key = {"frame_id"};
  EXPECT_TRUE(schema.add_table(parent).is_ok());
  db::TableDef child;
  child.name = "objects";
  child.col("object_id", db::ColumnType::kInt64, false);
  child.col("frame_id", db::ColumnType::kInt64, false);
  child.primary_key = {"object_id"};
  child.foreign_keys.push_back(db::ForeignKey{{"frame_id"}, "frames"});
  EXPECT_TRUE(schema.add_table(child).is_ok());
  return schema;
}

db::Row frame(int64_t id) { return {db::Value::i64(id)}; }
db::Row object(int64_t id, int64_t frame_id) {
  return {db::Value::i64(id), db::Value::i64(frame_id)};
}

// ---------------------------------------------------------- DirectSession ---

TEST(DirectSessionTest, PrepareValidatesTable) {
  db::Engine engine(two_table_schema());
  DirectSession session(engine);
  EXPECT_TRUE(session.prepare_insert("frames").is_ok());
  EXPECT_FALSE(session.prepare_insert("nonexistent").is_ok());
}

TEST(DirectSessionTest, BatchRoundTrip) {
  db::Engine engine(two_table_schema());
  DirectSession session(engine);
  const uint32_t frames = session.prepare_insert("frames").value();
  std::vector<db::Row> rows = {frame(1), frame(2), frame(3)};
  const BatchOutcome outcome = session.execute_batch(frames, rows);
  EXPECT_EQ(outcome.applied, 3);
  EXPECT_FALSE(outcome.error.has_value());
  ASSERT_TRUE(session.commit().is_ok());
  EXPECT_EQ(engine.live_view().row_count(frames), 3);
  EXPECT_EQ(session.stats().db_calls, 2);  // batch + commit
  EXPECT_EQ(session.stats().rows_applied, 3);
}

TEST(DirectSessionTest, BatchErrorSemantics) {
  db::Engine engine(two_table_schema());
  DirectSession session(engine);
  const uint32_t frames = session.prepare_insert("frames").value();
  std::vector<db::Row> rows = {frame(1), frame(2), frame(1), frame(4)};
  const BatchOutcome outcome = session.execute_batch(frames, rows);
  EXPECT_EQ(outcome.applied, 2);
  ASSERT_TRUE(outcome.error.has_value());
  EXPECT_EQ(outcome.error->row_index, 2u);
  // Row 4 was discarded with the rest of the failed batch.
  EXPECT_EQ(engine.live_view().row_count(frames), 2);
  EXPECT_EQ(session.stats().failed_calls, 1);
}

TEST(DirectSessionTest, SingleInsertPath) {
  db::Engine engine(two_table_schema());
  DirectSession session(engine);
  const uint32_t frames = session.prepare_insert("frames").value();
  EXPECT_TRUE(session.execute_single(frames, frame(1)).is_ok());
  EXPECT_EQ(session.execute_single(frames, frame(1)).code(),
            ErrorCode::kConstraintPrimaryKey);
  EXPECT_EQ(session.stats().single_calls, 2);
  EXPECT_EQ(session.stats().rows_applied, 1);
}

TEST(DirectSessionTest, CommitWithoutTransactionIsNoOp) {
  db::Engine engine(two_table_schema());
  DirectSession session(engine);
  EXPECT_TRUE(session.commit().is_ok());
  EXPECT_EQ(session.stats().commits, 0);
}

TEST(DirectSessionTest, AbandonedTransactionRollsBackOnClose) {
  db::Engine engine(two_table_schema());
  const uint32_t frames = engine.table_id("frames").value();
  {
    DirectSession session(engine);
    ASSERT_TRUE(session.execute_single(frames, frame(1)).is_ok());
    // No commit: destructor must roll back.
  }
  EXPECT_EQ(engine.live_view().row_count(frames), 0);
  // And a fresh session can reuse the key.
  DirectSession session(engine);
  EXPECT_TRUE(session.execute_single(frames, frame(1)).is_ok());
  EXPECT_TRUE(session.commit().is_ok());
  EXPECT_EQ(engine.live_view().row_count(frames), 1);
}

// -------------------------------------------------------------- CostModel ---

TEST(CostModelTest, ServerTimeScalesWithWork) {
  const CostModel costs = paper_calibrated_costs();
  db::OpCosts light;
  light.rows_applied = 1;
  db::OpCosts heavy;
  heavy.rows_applied = 1;
  heavy.index_updates = 4;
  heavy.index_float_columns = 3;
  heavy.index_node_visits = 20;
  heavy.wal_bytes = 4096;
  EXPECT_GT(costs.server_cpu_time(heavy), costs.server_cpu_time(light));
  EXPECT_GT(costs.server_cpu_time(light), 0);
}

TEST(CostModelTest, FloatIndexColumnsCostMoreThanInt) {
  const CostModel costs = paper_calibrated_costs();
  db::OpCosts int_index;
  int_index.index_updates = 1;
  int_index.index_int_columns = 1;
  db::OpCosts float_index;
  float_index.index_updates = 1;
  float_index.index_float_columns = 3;
  EXPECT_GT(static_cast<double>(costs.server_cpu_time(float_index)),
            static_cast<double>(costs.server_cpu_time(int_index)) * 3.0);
}

TEST(CostModelTest, CalibratedSpeedupInPaperRange) {
  // Analytic sanity check of the calibration: the modeled bulk/non-bulk
  // per-row cost ratio at batch-size 40 must land in the paper's 7-9x.
  const CostModel costs = paper_calibrated_costs();
  db::OpCosts one_row;
  one_row.rows_applied = 1;
  one_row.check_evals = 8;
  one_row.index_updates = 1;
  one_row.index_int_columns = 1;
  one_row.index_node_visits = 8;
  one_row.fk_checks = 1;
  one_row.fk_node_visits = 4;
  one_row.heap_bytes = 330;
  one_row.wal_bytes = 330;
  const double row_server =
      static_cast<double>(costs.server_cpu_time(one_row));
  const double call_overhead =
      static_cast<double>(costs.client_call_overhead + costs.wire_latency * 2 +
                          costs.server_call_overhead);
  const double non_bulk_per_row =
      call_overhead + row_server + static_cast<double>(costs.client_row_parse);
  const double b = 40;
  const double bulk_per_row =
      call_overhead / b + row_server +
      static_cast<double>(costs.client_row_parse) +
      b * static_cast<double>(costs.client_marshal_per_row_per_batchrow);
  const double speedup = non_bulk_per_row / bulk_per_row;
  EXPECT_GE(speedup, 6.5) << "speedup=" << speedup;
  EXPECT_LE(speedup, 9.5) << "speedup=" << speedup;
  // Optimal batch size (minimizing call/b + q*b) is in the paper's 40-50.
  const double optimal_b = std::sqrt(
      call_overhead /
      static_cast<double>(costs.client_marshal_per_row_per_batchrow));
  EXPECT_GE(optimal_b, 35.0) << optimal_b;
  EXPECT_LE(optimal_b, 55.0) << optimal_b;
}

// ------------------------------------------------------------- SimSession ---

TEST(SimSessionTest, VirtualTimeAdvancesPerCall) {
  db::Engine engine(two_table_schema());
  sim::Environment env;
  SimServer server(env, engine, ServerConfig{});
  Nanos batch_time = 0, single_time = 0;
  env.spawn("loader", [&] {
    SimSession session(server);
    const uint32_t frames = session.prepare_insert("frames").value();
    std::vector<db::Row> rows;
    for (int i = 0; i < 40; ++i) rows.push_back(frame(i));
    const Nanos t0 = env.now();
    session.execute_batch(frames, rows);
    batch_time = env.now() - t0;
    const Nanos t1 = env.now();
    ASSERT_TRUE(session.execute_single(frames, frame(100)).is_ok());
    single_time = env.now() - t1;
    ASSERT_TRUE(session.commit().is_ok());
  });
  env.run();
  EXPECT_GT(batch_time, 0);
  EXPECT_GT(single_time, 0);
  // 40 rows in one call cost far less than 40 single calls would.
  EXPECT_LT(batch_time, 40 * single_time);
  // But a batch still costs more than one single call.
  EXPECT_GT(batch_time, single_time);
  EXPECT_EQ(engine.live_view().row_count(0), 41);
}

TEST(SimSessionTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    db::Engine engine(two_table_schema());
    sim::Environment env;
    SimServer server(env, engine, ServerConfig{});
    env.spawn("loader", [&] {
      SimSession session(server);
      const uint32_t frames = session.prepare_insert("frames").value();
      const uint32_t objects = session.prepare_insert("objects").value();
      std::vector<db::Row> frame_rows, object_rows;
      for (int i = 0; i < 25; ++i) frame_rows.push_back(frame(i));
      for (int i = 0; i < 100; ++i) object_rows.push_back(object(i, i % 25));
      session.execute_batch(frames, frame_rows);
      session.execute_batch(objects, object_rows);
      ASSERT_TRUE(session.commit().is_ok());
    });
    env.run();
    return env.now();
  };
  const Nanos first = run_once();
  EXPECT_EQ(first, run_once());
  EXPECT_GT(first, 0);
}

TEST(SimSessionTest, StatsDecomposeTime) {
  db::Engine engine(two_table_schema());
  sim::Environment env;
  SimServer server(env, engine, ServerConfig{});
  SessionStats stats;
  env.spawn("loader", [&] {
    SimSession session(server);
    const uint32_t frames = session.prepare_insert("frames").value();
    std::vector<db::Row> rows;
    for (int i = 0; i < 200; ++i) rows.push_back(frame(i));
    for (size_t start = 0; start < rows.size(); start += 40) {
      session.execute_batch(
          frames, std::span<const db::Row>(&rows[start], 40));
    }
    ASSERT_TRUE(session.commit().is_ok());
    session.client_compute(5 * kMillisecond);
    stats = session.stats();
  });
  env.run();
  EXPECT_EQ(stats.batch_calls, 5);
  EXPECT_EQ(stats.commits, 1);
  EXPECT_EQ(stats.rows_applied, 200);
  EXPECT_GT(stats.client_time, 5 * kMillisecond);
  EXPECT_GT(stats.server_time, 0);
  EXPECT_GT(stats.network_time, 0);
  EXPECT_GT(stats.io_time, 0);  // commit flushed the log
}

TEST(SimSessionTest, PagingChargesMoreThanFitting) {
  db::Engine engine(two_table_schema());
  sim::Environment env;
  SimServer server(env, engine, ServerConfig{});
  Nanos fits_time = 0, paging_time = 0;
  env.spawn("loader", [&] {
    SimSession session(server);
    Nanos t0 = env.now();
    session.note_buffered_rows(1000, 100 * 1024,
                               /*columnar=*/false);  // fits in client memory
    fits_time = env.now() - t0;
    t0 = env.now();
    session.note_buffered_rows(1000, 64 * 1024 * 1024,
                               /*columnar=*/false);  // thrashing
    paging_time = env.now() - t0;
  });
  env.run();
  EXPECT_GT(paging_time, fits_time * 10);
}

TEST(SimSessionTest, TransactionSlotsLimitConcurrency) {
  db::Engine engine(two_table_schema());
  sim::Environment env;
  ServerConfig config;
  config.concurrency.max_concurrent_transactions = 2;
  SimServer server(env, engine, config);
  // Three loaders each hold a transaction for a long client compute; the
  // third must wait for a slot (virtual time shows serialization).
  std::vector<Nanos> first_insert_done(3);
  for (int w = 0; w < 3; ++w) {
    env.spawn("w" + std::to_string(w), [&, w] {
      SimSession session(server);
      const uint32_t frames = session.prepare_insert("frames").value();
      ASSERT_TRUE(
          session.execute_single(frames, frame(w)).is_ok());
      session.client_compute(10 * kSecond);  // hold the slot
      first_insert_done[static_cast<size_t>(w)] = env.now();
      ASSERT_TRUE(session.commit().is_ok());
    });
  }
  env.run();
  // Workers 0 and 1 proceed together; worker 2 is delayed by ~a full hold.
  EXPECT_GT(first_insert_done[2], first_insert_done[0] + 9 * kSecond);
  EXPECT_GE(server.transaction_slots().stats().waits, 1u);
}

TEST(SimServerTest, SessionsAttachToNodesRoundRobin) {
  db::Engine engine(two_table_schema());
  sim::Environment env;
  ServerConfig config;
  config.nodes = 3;
  config.cpus = 6;
  SimServer server(env, engine, config);
  EXPECT_EQ(server.node_count(), 3);
  EXPECT_EQ(server.assign_node(), 0);
  EXPECT_EQ(server.assign_node(), 1);
  EXPECT_EQ(server.assign_node(), 2);
  EXPECT_EQ(server.assign_node(), 0);
  // Each node got cpus/nodes CPUs.
  EXPECT_EQ(server.node_cpus(0).capacity(), 2);
  EXPECT_EQ(server.node_cpus(2).capacity(), 2);
}

TEST(SimServerTest, CacheFusionOnlyOnCrossNodeWrites) {
  db::Engine engine(two_table_schema());
  sim::Environment env;
  ServerConfig config;
  config.nodes = 2;
  SimServer server(env, engine, config);
  // First write establishes ownership: no transfer.
  EXPECT_EQ(server.note_table_writer(0, 0, 5), 0);
  // Same node again: no transfer.
  EXPECT_EQ(server.note_table_writer(0, 0, 5), 0);
  // Other node takes over: pages ship.
  EXPECT_EQ(server.note_table_writer(0, 1, 5), 5);
  // And back.
  EXPECT_EQ(server.note_table_writer(0, 0, 3), 3);
  // A different table has independent ownership.
  EXPECT_EQ(server.note_table_writer(1, 1, 7), 0);
}

TEST(SimServerTest, SingleInstanceNeverShips) {
  db::Engine engine(two_table_schema());
  sim::Environment env;
  SimServer server(env, engine, ServerConfig{});  // nodes = 1
  EXPECT_EQ(server.note_table_writer(0, 0, 10), 0);
  EXPECT_EQ(server.note_table_writer(0, 0, 10), 0);
}

TEST(SimSessionTest, ClusterSharedTableSlowerThanSingleNodeOnlyWhenAlternating) {
  // Two loaders alternating inserts into one table: on a 2-node cluster
  // each handoff ships the hot blocks, so the same work takes longer than
  // on one node with the same total CPU count.
  auto run_nodes = [](int nodes) {
    db::Engine engine(two_table_schema());
    sim::Environment env;
    ServerConfig config;
    config.nodes = nodes;
    config.cpus = 8;
    SimServer server(env, engine, config);
    for (int w = 0; w < 2; ++w) {
      env.spawn("w" + std::to_string(w), [&, w] {
        SimSession session(server);
        const uint32_t frames = session.prepare_insert("frames").value();
        for (int i = 0; i < 50; ++i) {
          std::vector<db::Row> rows;
          for (int r = 0; r < 10; ++r) {
            rows.push_back(frame(w * 100000 + i * 100 + r));
          }
          session.execute_batch(frames, rows);
        }
        ASSERT_TRUE(session.commit().is_ok());
      });
    }
    env.run();
    return env.now();
  };
  EXPECT_GT(run_nodes(2), run_nodes(1));
}

TEST(SimSessionTest, SingleDeviceLayoutSlowerThanSeparate) {
  // The section 4.5.3 mechanism: with everything on one RAID, log flushes
  // queue behind data/index writes.
  auto run_layout = [](storage::DeviceLayout layout) {
    db::Schema schema = two_table_schema();
    db::EngineOptions engine_options;
    engine_options.device_layout = layout;
    engine_options.dirty_trigger = 16;  // flush often to stress devices
    engine_options.cache_pages = 64;
    db::Engine engine(std::move(schema), engine_options);
    sim::Environment env;
    ServerConfig config;
    config.device_layout = layout;
    SimServer server(env, engine, config);
    for (int w = 0; w < 3; ++w) {
      env.spawn("w" + std::to_string(w), [&, w] {
        SimSession session(server);
        const uint32_t frames = session.prepare_insert("frames").value();
        std::vector<db::Row> rows;
        for (int i = 0; i < 400; ++i) rows.push_back(frame(w * 10000 + i));
        for (size_t start = 0; start < rows.size(); start += 40) {
          session.execute_batch(
              frames, std::span<const db::Row>(&rows[start], 40));
          ASSERT_TRUE(session.commit().is_ok());  // frequent commits
        }
      });
    }
    env.run();
    return env.now();
  };
  const Nanos separate = run_layout(storage::DeviceLayout::separate_raids());
  const Nanos single = run_layout(storage::DeviceLayout::single_raid());
  EXPECT_GT(single, separate);
}

}  // namespace
}  // namespace sky::client
