// skyloader_tool: the command-line face of the framework.
//
// Subcommands:
//   generate  --night N --megabytes M [--error-rate R] [--out DIR]
//             Write the reference file plus an observation's 28 catalog
//             files to DIR.
//   load      --parallel P [--batch B] [--array A] [--report out.md] FILES...
//             Create a repository, load the files (reference files first,
//             detected by name), print/write a report.
//   verify    FILES...
//             Load into a throwaway repository and run the deep integrity
//             audit; exit nonzero on any inconsistency.
//   cone      --ra RA --dec DEC --radius R FILES...
//             Load, then run an HTM-index cone search and print matches.
//   lint      FILES...
//             Parse-only structural check: per-tag row counts and the
//             first parse errors, without touching a database.
//   query     --sql "SELECT * FROM objects WHERE mag < 18 LIMIT 5" FILES...
//             Load, then run a textual query through the planner.
//   recover   --wal repo.wal
//             Rebuild a repository from a persisted WAL file and audit it
//             (pairs with `load --wal repo.wal`).
//
// Everything is deterministic given --seed.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "catalog/generator.h"
#include "catalog/parser.h"
#include "catalog/pq_schema.h"
#include "client/session.h"
#include "common/log.h"
#include "core/coordinator.h"
#include "core/tuning.h"
#include "db/engine.h"
#include "db/query.h"
#include "db/recovery.h"
#include "db/sql.h"
#include "htm/htm.h"
#include "storage/wal_file.h"

using namespace sky;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  std::vector<std::string> positional;
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc > 1) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::string key = arg.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        args.options[key] = argv[++i];
      } else {
        args.options[key] = "true";
      }
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

int64_t opt_int(const Args& args, const std::string& key, int64_t fallback) {
  const auto it = args.options.find(key);
  return it == args.options.end() ? fallback : std::atoll(it->second.c_str());
}

double opt_double(const Args& args, const std::string& key, double fallback) {
  const auto it = args.options.find(key);
  return it == args.options.end() ? fallback : std::atof(it->second.c_str());
}

std::string opt_string(const Args& args, const std::string& key,
                       const std::string& fallback) {
  const auto it = args.options.find(key);
  return it == args.options.end() ? fallback : it->second;
}

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  skyloader_tool generate --night N --megabytes M [--error-rate R]\n"
      "                 [--seed S] [--out DIR]\n"
      "  skyloader_tool load [--parallel P] [--batch B] [--array A]\n"
      "                 [--report out.md] FILES...\n"
      "  skyloader_tool verify FILES...\n"
      "  skyloader_tool cone --ra RA --dec DEC --radius R FILES...\n"
      "  skyloader_tool lint FILES...\n"
      "  skyloader_tool query --sql QUERY FILES...\n"
      "  skyloader_tool recover --wal FILE.wal\n");
  return 2;
}

int cmd_lint(const Args& args) {
  if (args.positional.empty()) return usage();
  const db::Schema schema = catalog::make_pq_schema();
  int exit_code = 0;
  for (const std::string& path : args.positional) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      exit_code = 1;
      continue;
    }
    catalog::CatalogParser parser(schema);
    std::map<std::string, int64_t> per_table;
    std::vector<std::string> first_errors;
    std::string line;
    int64_t line_number = 0;
    while (std::getline(in, line)) {
      ++line_number;
      if (!catalog::CatalogParser::is_data_line(line)) continue;
      const auto parsed = parser.parse_line(line);
      if (parsed.is_ok()) {
        ++per_table[schema.table(parsed->table_id).name];
      } else if (first_errors.size() < 5) {
        first_errors.push_back(
            "line " + std::to_string(line_number) + ": " +
            parsed.status().message().substr(0, 80));
      }
    }
    const auto& stats = parser.stats();
    std::printf("%s: %lld data rows, %lld parse errors, %lld htmids "
                "computed\n",
                path.c_str(), static_cast<long long>(stats.data_rows),
                static_cast<long long>(stats.parse_errors),
                static_cast<long long>(stats.htmids_computed));
    for (const auto& [table, count] : per_table) {
      std::printf("  %-22s %8lld\n", table.c_str(),
                  static_cast<long long>(count));
    }
    for (const std::string& error : first_errors) {
      std::printf("  ! %s\n", error.c_str());
    }
    if (stats.parse_errors > 0) exit_code = 1;
  }
  return exit_code;
}

int cmd_generate(const Args& args) {
  const int64_t night = opt_int(args, "night", 1);
  const int64_t megabytes = opt_int(args, "megabytes", 8);
  const double error_rate = opt_double(args, "error-rate", 0.0);
  const uint64_t seed = static_cast<uint64_t>(opt_int(args, "seed", 42));
  const std::filesystem::path out_dir = opt_string(args, "out", ".");
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);

  auto write_file = [&](const std::string& name, const std::string& text) {
    const auto path = out_dir / name;
    std::ofstream out(path, std::ios::binary);
    out << text;
    std::printf("wrote %s (%zu bytes)\n", path.c_str(), text.size());
    return out.good();
  };
  if (!write_file("reference.cat",
                  catalog::CatalogGenerator::reference_file().text)) {
    return 1;
  }
  for (const auto& spec : catalog::CatalogGenerator::observation_specs(
           seed, night, megabytes * 1000 * 1000, error_rate)) {
    if (!write_file(spec.name, catalog::CatalogGenerator::generate(spec).text)) {
      return 1;
    }
  }
  return 0;
}

Result<std::vector<core::CatalogFile>> read_files(
    const std::vector<std::string>& paths) {
  std::vector<core::CatalogFile> files;
  for (const std::string& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return Status(ErrorCode::kIoError, "cannot open " + path);
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    files.push_back(core::CatalogFile{path, std::move(text)});
  }
  return files;
}

// Loads reference-looking files serially first, the rest in parallel.
Result<core::ParallelLoadReport> load_into(db::Engine& engine,
                                           const db::Schema& schema,
                                           std::vector<core::CatalogFile> files,
                                           const core::CoordinatorOptions& options) {
  std::vector<core::CatalogFile> nightly;
  for (core::CatalogFile& file : files) {
    if (file.name.find("reference") != std::string::npos) {
      client::DirectSession session(engine);
      core::BulkLoaderOptions ref_options = options.loader;
      ref_options.write_audit_row = false;
      core::BulkLoader loader(session, schema, ref_options);
      SKY_RETURN_IF_ERROR(loader.load_text(file.name, file.text).status());
    } else {
      nightly.push_back(std::move(file));
    }
  }
  return core::LoadCoordinator::run_threads(
      nightly, schema,
      [&](int) { return std::make_unique<client::DirectSession>(engine); },
      options);
}

int cmd_load(const Args& args, bool verify_only) {
  if (args.positional.empty()) return usage();
  const db::Schema schema = catalog::make_pq_schema();
  const core::TuningProfile profile = core::TuningProfile::production();
  db::EngineOptions engine_options = profile.engine_options();
  const std::string wal_path = opt_string(args, "wal", "");
  if (!wal_path.empty()) engine_options.retain_wal_records = true;
  db::Engine engine(schema, engine_options);
  if (!profile.apply_index_policy(engine).is_ok()) return 1;

  auto files = read_files(args.positional);
  if (!files.is_ok()) {
    std::fprintf(stderr, "%s\n", files.status().to_string().c_str());
    return 1;
  }
  core::CoordinatorOptions options;
  options.parallel_degree = static_cast<int>(opt_int(args, "parallel", 4));
  options.loader.batch_size = opt_int(args, "batch", 40);
  options.loader.array_config.default_rows = opt_int(args, "array", 1000);
  const auto report =
      load_into(engine, schema, std::move(*files), options);
  if (!report.is_ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 report.status().to_string().c_str());
    return 1;
  }
  std::printf("%s\n", report->summary().c_str());

  const Status audit = engine.verify_integrity();
  std::printf("integrity audit: %s\n", audit.to_string().c_str());
  if (verify_only) {
    core::FileLoadReport totals;
    for (const auto& file : report->files) totals.merge_counts(file);
    std::printf("skipped rows: %lld\n",
                static_cast<long long>(totals.total_skipped()));
    return audit.is_ok() ? 0 : 1;
  }

  if (!wal_path.empty()) {
    const Status wal_status =
        storage::write_wal_file(wal_path, engine.wal_records());
    if (!wal_status.is_ok()) {
      std::fprintf(stderr, "%s\n", wal_status.to_string().c_str());
      return 1;
    }
    std::printf("WAL persisted to %s (%zu records)\n", wal_path.c_str(),
                engine.wal_records().size());
  }

  const std::string report_path = opt_string(args, "report", "");
  if (!report_path.empty()) {
    std::ofstream out(report_path);
    out << core::render_markdown_report(*report);
    std::printf("report written to %s\n", report_path.c_str());
  } else {
    std::printf("\n%s", core::render_markdown_report(*report).c_str());
  }
  return audit.is_ok() ? 0 : 1;
}

int cmd_cone(const Args& args) {
  if (args.positional.empty()) return usage();
  const double ra = opt_double(args, "ra", 0);
  const double dec = opt_double(args, "dec", 0);
  const double radius = opt_double(args, "radius", 0.5);

  const db::Schema schema = catalog::make_pq_schema();
  db::Engine engine(schema);
  auto files = read_files(args.positional);
  if (!files.is_ok()) {
    std::fprintf(stderr, "%s\n", files.status().to_string().c_str());
    return 1;
  }
  core::CoordinatorOptions options;
  options.loader.write_audit_row = false;
  const auto report = load_into(engine, schema, std::move(*files), options);
  if (!report.is_ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 report.status().to_string().c_str());
    return 1;
  }
  const uint32_t objects = engine.table_id("objects").value();
  const htm::Vec3 center = htm::radec_to_vector(ra, dec);
  int64_t matches = 0;
  for (const htm::IdRange& range :
       htm::cone_cover(center, radius, catalog::CatalogParser::kHtmDepth)) {
    const auto rows = engine.live_view().index_range(
        objects, catalog::kIndexHtmid,
        {db::Value::i64(static_cast<int64_t>(range.first))},
        {db::Value::i64(static_cast<int64_t>(range.last))});
    if (!rows.is_ok()) {
      std::fprintf(stderr, "%s\n", rows.status().to_string().c_str());
      return 1;
    }
    for (const db::Row& row : *rows) {
      if (htm::angular_distance_deg(
              center, htm::radec_to_vector(row[2].as_f64(),
                                           row[3].as_f64())) <= radius) {
        if (matches < 20) {
          std::printf("object %s ra=%.5f dec=%.5f mag=%.2f\n",
                      row[0].to_display().c_str(), row[2].as_f64(),
                      row[3].as_f64(), row[4].as_f64());
        }
        ++matches;
      }
    }
  }
  std::printf("total matches within %.3f deg of (%.4f, %.4f): %lld\n", radius,
              ra, dec, static_cast<long long>(matches));
  return 0;
}

int cmd_query(const Args& args) {
  const std::string sql = opt_string(args, "sql", "");
  if (sql.empty() || args.positional.empty()) return usage();
  const db::Schema schema = catalog::make_pq_schema();
  db::Engine engine(schema);
  auto files = read_files(args.positional);
  if (!files.is_ok()) {
    std::fprintf(stderr, "%s\n", files.status().to_string().c_str());
    return 1;
  }
  core::CoordinatorOptions options;
  options.loader.write_audit_row = false;
  const auto report = load_into(engine, schema, std::move(*files), options);
  if (!report.is_ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 report.status().to_string().c_str());
    return 1;
  }
  const auto spec = db::parse_query(schema, sql);
  if (!spec.is_ok()) {
    std::fprintf(stderr, "%s\n", spec.status().to_string().c_str());
    return 1;
  }
  const db::QueryPlanner planner(engine);
  const auto result = planner.execute(*spec);
  if (!result.is_ok()) {
    std::fprintf(stderr, "%s\n", result.status().to_string().c_str());
    return 1;
  }
  const db::TableDef& def =
      engine.schema().table(engine.table_id(spec->table).value());
  std::printf("plan: %s (%lld rows examined)\n", result->plan.c_str(),
              static_cast<long long>(result->rows_examined));
  // Header.
  for (const db::ColumnDef& column : def.columns) {
    std::printf("%s\t", column.name.c_str());
  }
  std::printf("\n");
  for (const db::Row& row : result->rows) {
    for (const db::Value& value : row) {
      std::printf("%s\t", value.to_display().c_str());
    }
    std::printf("\n");
  }
  std::printf("(%zu rows)\n", result->rows.size());
  return 0;
}

int cmd_recover(const Args& args) {
  const std::string wal_path = opt_string(args, "wal", "");
  if (wal_path.empty()) return usage();
  const auto read = storage::read_wal_file(wal_path);
  if (!read.is_ok()) {
    std::fprintf(stderr, "%s\n", read.status().to_string().c_str());
    return 1;
  }
  if (read->truncated) {
    std::printf("warning: WAL tail damaged; recovering the intact prefix "
                "(%zu records)\n",
                read->records.size());
  }
  const db::Schema schema = catalog::make_pq_schema();
  db::RecoveryStats stats;
  const auto recovered =
      db::recover_from_wal(schema, read->records, db::EngineOptions{}, &stats);
  if (!recovered.is_ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 recovered.status().to_string().c_str());
    return 1;
  }
  std::printf("recovered %lld rows from %lld committed transactions "
              "(%lld discarded)\n",
              static_cast<long long>(stats.rows_replayed),
              static_cast<long long>(stats.transactions_committed),
              static_cast<long long>(stats.transactions_discarded));
  for (uint32_t t = 0; t < static_cast<uint32_t>(schema.table_count()); ++t) {
    const int64_t rows = (*recovered)->live_view().row_count(t);
    if (rows > 0) {
      std::printf("  %-22s %8lld\n", schema.table(t).name.c_str(),
                  static_cast<long long>(rows));
    }
  }
  const Status audit = (*recovered)->verify_integrity();
  std::printf("integrity audit: %s\n", audit.to_string().c_str());
  return audit.is_ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  const Args args = parse_args(argc, argv);
  if (args.command == "generate") return cmd_generate(args);
  if (args.command == "load") return cmd_load(args, /*verify_only=*/false);
  if (args.command == "verify") return cmd_load(args, /*verify_only=*/true);
  if (args.command == "cone") return cmd_cone(args);
  if (args.command == "lint") return cmd_lint(args);
  if (args.command == "query") return cmd_query(args);
  if (args.command == "recover") return cmd_recover(args);
  return usage();
}
